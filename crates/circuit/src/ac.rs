//! Small-signal AC analysis — the paper's **dynamic mode** ("tried on
//! different kinds and sizes of circuits, either in dynamic mode or in
//! static one", §9).
//!
//! [`solve_ac`] computes the complex node phasors of a linearized circuit
//! at one frequency: one voltage source acts as the AC stimulus, every
//! other independent source is nulled (voltage sources short, current
//! sources open), capacitors and inductors get their complex admittances,
//! and the idealized devices keep their piecewise-linear small-signal
//! behaviour (`vbe = 0`, `ic = β·ib`; conducting diodes short, blocking
//! diodes open — states taken from the DC operating point).

use crate::error::CircuitError;
use crate::netlist::{CompId, ComponentKind, Net, Netlist};
use crate::solve::{solve_dc, DeviceSolution, DiodeState};
use crate::Result;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number (kept local: the workspace carries no numerics
/// dependency).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Builds `re + j·im`.
    #[must_use]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real number.
    #[must_use]
    pub fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// A purely imaginary number.
    #[must_use]
    pub fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// Magnitude `|z|`.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase in radians.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Squared magnitude.
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.4}+j{:.4}", self.re, self.im)
        } else {
            write!(f, "{:.4}-j{:.4}", self.re, -self.im)
        }
    }
}

/// The solved small-signal response at one frequency.
#[derive(Debug, Clone)]
pub struct AcSolution {
    voltages: Vec<Complex>,
    freq_hz: f64,
}

impl AcSolution {
    /// The complex phasor at a net.
    ///
    /// # Panics
    ///
    /// Panics for a foreign net.
    #[must_use]
    pub fn phasor(&self, net: Net) -> Complex {
        self.voltages[net.index()]
    }

    /// The amplitude (magnitude) at a net.
    #[must_use]
    pub fn amplitude(&self, net: Net) -> f64 {
        self.phasor(net).abs()
    }

    /// The phase at a net, in radians.
    #[must_use]
    pub fn phase(&self, net: Net) -> f64 {
        self.phasor(net).arg()
    }

    /// The analysis frequency in hertz.
    #[must_use]
    pub fn frequency_hz(&self) -> f64 {
        self.freq_hz
    }
}

/// Conductance standing in for an ideal short in the AC stamps.
const GSHORT: f64 = 1e9;
/// GMIN to ground keeping floating nets solvable.
const GMIN: f64 = 1e-12;

/// Solves the small-signal response of `netlist` at `freq_hz`, driving
/// the voltage source `input` with `amplitude` volts and nulling every
/// other independent source.
///
/// # Errors
///
/// * [`CircuitError::UnknownComponent`] / [`CircuitError::InvalidParameter`]
///   if `input` is not a voltage source of this netlist;
/// * [`CircuitError::SingularSystem`] when the complex MNA matrix cannot
///   be factored;
/// * DC-solve errors from establishing diode states.
pub fn solve_ac(
    netlist: &Netlist,
    input: CompId,
    amplitude: f64,
    freq_hz: f64,
) -> Result<AcSolution> {
    if input.index() >= netlist.component_count() {
        return Err(CircuitError::UnknownComponent {
            index: input.index(),
        });
    }
    if !matches!(
        netlist.component(input).kind(),
        ComponentKind::VoltageSource { .. }
    ) {
        return Err(CircuitError::InvalidParameter {
            component: netlist.component(input).name().to_owned(),
            what: "the AC input must be a voltage source",
        });
    }
    // Diode conduction states come from the DC operating point.
    let dc = solve_dc(netlist)?;
    let omega = 2.0 * std::f64::consts::PI * freq_hz;

    let n_nets = netlist.net_count();
    // Branch variables for voltage-defined elements.
    let mut branch_of: Vec<Option<usize>> = vec![None; netlist.component_count()];
    let mut n_branches = 0usize;
    for (id, comp) in netlist.components() {
        let needs = matches!(
            comp.kind(),
            ComponentKind::VoltageSource { .. } | ComponentKind::Gain { .. }
        ) || matches!(comp.kind(), ComponentKind::Npn { base, emitter, .. } if base != emitter);
        if needs {
            branch_of[id.index()] = Some(n_nets - 1 + n_branches);
            n_branches += 1;
        }
    }
    let dim = n_nets - 1 + n_branches;
    let mut a = vec![Complex::ZERO; dim * dim];
    let mut b = vec![Complex::ZERO; dim];

    let vid = |net: Net| -> Option<usize> {
        if net.is_ground() {
            None
        } else {
            Some(net.index() - 1)
        }
    };
    let stamp = |m: &mut Vec<Complex>, r: Option<usize>, c: Option<usize>, val: Complex| {
        if let (Some(r), Some(c)) = (r, c) {
            m[r * dim + c] = m[r * dim + c] + val;
        }
    };
    let stamp_admittance =
        |m: &mut Vec<Complex>, na: Net, nb: Net, y: Complex, vid: &dyn Fn(Net) -> Option<usize>| {
            let (ia, ib) = (vid(na), vid(nb));
            if let (Some(r), Some(_)) = (ia, ia) {
                m[r * dim + r] = m[r * dim + r] + y;
            }
            if let (Some(r), Some(_)) = (ib, ib) {
                m[r * dim + r] = m[r * dim + r] + y;
            }
            if let (Some(r), Some(c)) = (ia, ib) {
                m[r * dim + c] = m[r * dim + c] - y;
                m[c * dim + r] = m[c * dim + r] - y;
            }
        };

    for net in netlist.nets() {
        if let Some(i) = vid(net) {
            a[i * dim + i] = a[i * dim + i] + Complex::real(GMIN);
        }
    }

    for (id, comp) in netlist.components() {
        let br = branch_of[id.index()];
        match *comp.kind() {
            ComponentKind::Resistor { a: na, b: nb, ohms } => {
                stamp_admittance(&mut a, na, nb, Complex::real(1.0 / ohms), &vid);
            }
            ComponentKind::Capacitor {
                a: na,
                b: nb,
                farads,
            } => {
                stamp_admittance(&mut a, na, nb, Complex::imag(omega * farads), &vid);
            }
            ComponentKind::Inductor {
                a: na,
                b: nb,
                henries,
            } => {
                let y = if omega * henries == 0.0 {
                    Complex::real(GSHORT)
                } else {
                    Complex::ONE / Complex::imag(omega * henries)
                };
                stamp_admittance(&mut a, na, nb, y, &vid);
            }
            ComponentKind::VoltageSource { plus, minus, .. } => {
                let k = br.expect("voltage source branch");
                let (ip, im) = (vid(plus), vid(minus));
                stamp(&mut a, ip, Some(k), Complex::ONE);
                stamp(&mut a, im, Some(k), -Complex::ONE);
                stamp(&mut a, Some(k), ip, Complex::ONE);
                stamp(&mut a, Some(k), im, -Complex::ONE);
                b[k] = if id == input {
                    Complex::real(amplitude)
                } else {
                    Complex::ZERO // nulled: an AC short
                };
            }
            ComponentKind::CurrentSource { .. } => {
                // Nulled: an AC open — contributes nothing.
            }
            ComponentKind::Diode { anode, cathode, .. } => {
                // Conducting at DC → small-signal short; blocking → open.
                if matches!(
                    dc.device(id),
                    DeviceSolution::Diode {
                        state: DiodeState::On,
                        ..
                    }
                ) {
                    stamp_admittance(&mut a, anode, cathode, Complex::real(GSHORT), &vid);
                }
            }
            ComponentKind::Npn {
                collector,
                base,
                emitter,
                beta,
                ..
            } => {
                if base == emitter {
                    continue;
                }
                let k = br.expect("BJT branch");
                let (ic_, ib_, ie_) = (vid(collector), vid(base), vid(emitter));
                // Small-signal of the clamp model: v(base) = v(emitter),
                // ic = β·ib.
                stamp(&mut a, ib_, Some(k), Complex::ONE);
                stamp(&mut a, ie_, Some(k), Complex::real(-(1.0 + beta)));
                stamp(&mut a, ic_, Some(k), Complex::real(beta));
                stamp(&mut a, Some(k), ib_, Complex::ONE);
                stamp(&mut a, Some(k), ie_, -Complex::ONE);
                b[k] = Complex::ZERO;
            }
            ComponentKind::Gain {
                input: gin,
                output,
                gain,
            } => {
                let k = br.expect("gain branch");
                let (ii, io) = (vid(gin), vid(output));
                stamp(&mut a, io, Some(k), Complex::ONE);
                stamp(&mut a, Some(k), io, Complex::ONE);
                stamp(&mut a, Some(k), ii, Complex::real(-gain));
            }
        }
    }

    let x = gauss_solve_complex(a, b, dim)?;
    let mut voltages = vec![Complex::ZERO; n_nets];
    for net in netlist.nets() {
        if let Some(i) = vid(net) {
            voltages[net.index()] = x[i];
        }
    }
    Ok(AcSolution { voltages, freq_hz })
}

/// Sweeps the small-signal response across `freqs_hz` (one
/// [`solve_ac`] per frequency) — the usual Bode-style workload.
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn frequency_response(
    netlist: &Netlist,
    input: CompId,
    amplitude: f64,
    freqs_hz: &[f64],
) -> Result<Vec<AcSolution>> {
    freqs_hz
        .iter()
        .map(|&f| solve_ac(netlist, input, amplitude, f))
        .collect()
}

fn gauss_solve_complex(mut a: Vec<Complex>, mut b: Vec<Complex>, n: usize) -> Result<Vec<Complex>> {
    for col in 0..n {
        let mut best = col;
        let mut best_val = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > best_val {
                best = row;
                best_val = v;
            }
        }
        if best_val < 1e-300 {
            return Err(CircuitError::SingularSystem);
        }
        if best != col {
            for k in 0..n {
                a.swap(col * n + k, best * n + k);
            }
            b.swap(col, best);
        }
        let pivot = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / pivot;
            if factor == Complex::ZERO {
                continue;
            }
            for k in col..n {
                a[row * n + k] = a[row * n + k] - factor * a[col * n + k];
            }
            b[row] = b[row] - factor * b[col];
        }
    }
    let mut x = vec![Complex::ZERO; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc = acc - a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(3.0, 4.0);
        assert!(close(a.abs(), 5.0, 1e-12));
        let b = Complex::new(1.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 3.0));
        assert_eq!(a - b, Complex::new(2.0, 5.0));
        assert_eq!(a * b, Complex::new(7.0, 1.0));
        let q = a / b;
        assert!(close(q.re, -0.5, 1e-12));
        assert!(close(q.im, 3.5, 1e-12));
        assert_eq!(-a, Complex::new(-3.0, -4.0));
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        assert!(close(
            Complex::imag(1.0).arg(),
            std::f64::consts::FRAC_PI_2,
            1e-12
        ));
        assert!(format!("{a}").contains("+j"));
        assert!(format!("{}", a.conj()).contains("-j"));
    }

    #[test]
    fn rc_low_pass_corner() {
        // R = 1k, C = 1µF: corner at 1/(2πRC) ≈ 159.15 Hz, where the
        // output sits at 1/√2 of the input with −45° phase.
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let out = nl.add_net("out");
        let src = nl.add_voltage_source("Vin", vin, Net::GROUND, 0.0).unwrap();
        nl.add_resistor("R", vin, out, 1e3, 0.0).unwrap();
        nl.add_capacitor("C", out, Net::GROUND, 1e-6, 0.0).unwrap();

        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-6);
        let sol = solve_ac(&nl, src, 1.0, fc).unwrap();
        assert!(close(
            sol.amplitude(out),
            std::f64::consts::FRAC_1_SQRT_2,
            1e-3
        ));
        assert!(close(sol.phase(out), -std::f64::consts::FRAC_PI_4, 1e-3));
        assert!(close(sol.amplitude(vin), 1.0, 1e-9));
        assert!(close(sol.frequency_hz(), fc, 1e-9));

        // A decade above the corner: ~20 dB down.
        let sol = solve_ac(&nl, src, 1.0, 10.0 * fc).unwrap();
        assert!(close(sol.amplitude(out), 0.0995, 1e-3));
        // A decade below: nearly unity.
        let sol = solve_ac(&nl, src, 1.0, fc / 10.0).unwrap();
        assert!(sol.amplitude(out) > 0.99);
    }

    #[test]
    fn rc_high_pass() {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let out = nl.add_net("out");
        let src = nl.add_voltage_source("Vin", vin, Net::GROUND, 0.0).unwrap();
        nl.add_capacitor("C", vin, out, 1e-6, 0.0).unwrap();
        nl.add_resistor("R", out, Net::GROUND, 1e3, 0.0).unwrap();
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-6);
        let sol = solve_ac(&nl, src, 1.0, fc).unwrap();
        assert!(close(
            sol.amplitude(out),
            std::f64::consts::FRAC_1_SQRT_2,
            1e-3
        ));
        // Far below the corner the output dies.
        let sol = solve_ac(&nl, src, 1.0, fc / 100.0).unwrap();
        assert!(sol.amplitude(out) < 0.02);
    }

    #[test]
    fn rl_divider() {
        // L against R: at ω = R/L the magnitudes split 1/√2.
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let out = nl.add_net("out");
        let src = nl.add_voltage_source("Vin", vin, Net::GROUND, 0.0).unwrap();
        nl.add_inductor("L", vin, out, 0.1, 0.0).unwrap();
        nl.add_resistor("R", out, Net::GROUND, 100.0, 0.0).unwrap();
        let fc = 100.0 / (2.0 * std::f64::consts::PI * 0.1);
        let sol = solve_ac(&nl, src, 1.0, fc).unwrap();
        assert!(close(
            sol.amplitude(out),
            std::f64::consts::FRAC_1_SQRT_2,
            1e-3
        ));
    }

    #[test]
    fn gain_block_scales_amplitude() {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let out = nl.add_net("out");
        let src = nl.add_voltage_source("Vin", vin, Net::GROUND, 0.0).unwrap();
        nl.add_gain("A", vin, out, 4.0, 0.0).unwrap();
        let sol = solve_ac(&nl, src, 0.5, 1000.0).unwrap();
        assert!(close(sol.amplitude(out), 2.0, 1e-9));
    }

    #[test]
    fn other_sources_are_nulled() {
        // A DC supply must not contribute to the small-signal response.
        let mut nl = Netlist::new();
        let vcc = nl.add_net("vcc");
        let vin = nl.add_net("vin");
        let out = nl.add_net("out");
        nl.add_voltage_source("Vcc", vcc, Net::GROUND, 18.0)
            .unwrap();
        let src = nl.add_voltage_source("Vin", vin, Net::GROUND, 0.0).unwrap();
        nl.add_resistor("R1", vin, out, 1e3, 0.0).unwrap();
        nl.add_resistor("R2", out, vcc, 1e3, 0.0).unwrap();
        let sol = solve_ac(&nl, src, 1.0, 100.0).unwrap();
        // vcc is an AC ground: plain divider halves the signal.
        assert!(close(sol.amplitude(out), 0.5, 1e-6));
        assert!(close(sol.amplitude(vcc), 0.0, 1e-9));
    }

    #[test]
    fn frequency_sweep_matches_single_solves() {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let out = nl.add_net("out");
        let src = nl.add_voltage_source("Vin", vin, Net::GROUND, 0.0).unwrap();
        nl.add_resistor("R", vin, out, 1e3, 0.0).unwrap();
        nl.add_capacitor("C", out, Net::GROUND, 1e-6, 0.0).unwrap();
        let freqs = [10.0, 100.0, 1_000.0];
        let sweep = frequency_response(&nl, src, 1.0, &freqs).unwrap();
        assert_eq!(sweep.len(), 3);
        for (sol, &f) in sweep.iter().zip(&freqs) {
            let single = solve_ac(&nl, src, 1.0, f).unwrap();
            assert!((sol.amplitude(out) - single.amplitude(out)).abs() < 1e-12);
        }
        // Monotone low-pass roll-off across the sweep.
        assert!(sweep[0].amplitude(out) > sweep[1].amplitude(out));
        assert!(sweep[1].amplitude(out) > sweep[2].amplitude(out));
    }

    #[test]
    fn input_must_be_a_voltage_source() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let r = nl.add_resistor("R", a, Net::GROUND, 1e3, 0.0).unwrap();
        nl.add_voltage_source("V", a, Net::GROUND, 1.0).unwrap();
        assert!(matches!(
            solve_ac(&nl, r, 1.0, 100.0),
            Err(CircuitError::InvalidParameter { .. })
        ));
        assert!(solve_ac(&nl, CompId::from_raw_for_tests(99), 1.0, 100.0).is_err());
    }
}
