//! Extraction of the **model database** (§6.2 of the paper) from a
//! netlist: "Kirchhoff's laws and Ohm's law are applied and constraints
//! which govern the behavior of components are used … one or more
//! propositional assumptions govern the validity of models".
//!
//! The network produced here is engine-agnostic: the fuzzy engine
//! (`flames-core`) propagates trapezoidal values through it, the crisp
//! baseline (`flames-crisp`) propagates plain intervals. Every constraint
//! carries its *support* — the component-correctness assumptions its
//! validity rests on — and Kirchhoff current laws additionally carry a
//! *connection assumption* for the net, which is what lets the engines
//! diagnose interconnect opens such as the paper's "open circuit in N1".

use crate::netlist::{CompId, ComponentKind, Net, Netlist};
use flames_fuzzy::FuzzyInterval;
use std::fmt;

/// Identifier of a quantity (node voltage, branch current or parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QuantityId(u32);

impl QuantityId {
    /// Raw index of the quantity.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index. Engines normally obtain ids from
    /// [`Network::find`] / [`Network::voltage_quantity`]; a fabricated id
    /// is only meaningful against the network it indexes.
    #[must_use]
    pub fn from_raw(index: usize) -> Self {
        QuantityId(u32::try_from(index).expect("< 2^32 quantities"))
    }
}

impl fmt::Display for QuantityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// What a quantity denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantityKind {
    /// Voltage of a net (w.r.t. ground).
    NodeVoltage(Net),
    /// Current through a two-terminal component (first → second terminal).
    BranchCurrent(CompId),
    /// Voltage drop across a two-terminal component.
    BranchDrop(CompId),
    /// Base current of a transistor.
    BaseCurrent(CompId),
    /// Collector current of a transistor.
    CollectorCurrent(CompId),
    /// Emitter current of a transistor.
    EmitterCurrent(CompId),
    /// The primary parameter of a component (resistance, gain, β, …).
    Param(CompId),
}

/// A named quantity in the constraint network.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantity {
    /// Human-readable name (`"V(n1)"`, `"I(R2)"`, `"beta(T1)"`, …).
    pub name: String,
    /// What the quantity denotes.
    pub kind: QuantityKind,
}

/// An invertible numeric relation among quantities.
#[derive(Debug, Clone, PartialEq)]
pub enum Relation {
    /// `Σ coefᵢ · qᵢ + bias = 0` — covers Kirchhoff's laws, source levels
    /// and drop definitions. Propagates toward any single unknown term.
    Linear {
        /// `(coefficient, quantity)` terms.
        terms: Vec<(f64, QuantityId)>,
        /// Constant bias.
        bias: f64,
    },
    /// `p = x · y` — covers Ohm's law (`V = I·R`), the transistor gain
    /// (`Ic = β·Ib`) and amplifier blocks (`Vout = G·Vin`). Propagates
    /// toward any of the three when the other two are known (divisors must
    /// exclude zero).
    Product {
        /// The product.
        p: QuantityId,
        /// First factor.
        x: QuantityId,
        /// Second factor.
        y: QuantityId,
    },
}

impl Relation {
    /// The quantities the relation mentions.
    #[must_use]
    pub fn quantities(&self) -> Vec<QuantityId> {
        match self {
            Relation::Linear { terms, .. } => terms.iter().map(|&(_, q)| q).collect(),
            Relation::Product { p, x, y } => vec![*p, *x, *y],
        }
    }
}

/// A constraint: a relation plus the assumptions its validity rests on.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// The numeric relation.
    pub relation: Relation,
    /// Component-correctness assumptions supporting the relation.
    pub support: Vec<CompId>,
    /// Connection assumption: `Some(net)` for Kirchhoff current laws,
    /// letting interconnect opens enter candidate sets.
    pub conn: Option<Net>,
    /// Human-readable name (`"KCL(n1)"`, `"Ohm(R2)"`, …).
    pub name: String,
}

/// A fuzzy *specification condition* on a quantity — e.g. the paper's
/// Fig. 5 diode spec "`Id ≤ 100 µA`", encoded as the fuzzy set
/// `[-1, 100, 0, 10]` (µA). The engine grades the satisfaction of the
/// derived quantity value against the condition; a violation raises a
/// nogood over `support` (plus the derivation's own environment).
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// The constrained quantity.
    pub quantity: QuantityId,
    /// The fuzzy admissible region.
    pub condition: FuzzyInterval,
    /// Components whose correctness the spec presumes.
    pub support: Vec<CompId>,
    /// Human-readable name.
    pub name: String,
}

/// An initial quantity value with the assumptions under which it is
/// believed (component parameters are believed under "the component is
/// correct").
#[derive(Debug, Clone, PartialEq)]
pub struct SeedValue {
    /// The seeded quantity.
    pub quantity: QuantityId,
    /// The fuzzy value.
    pub value: FuzzyInterval,
    /// Supporting assumptions.
    pub support: Vec<CompId>,
}

/// The extracted constraint network.
#[derive(Debug, Clone, Default)]
pub struct Network {
    quantities: Vec<Quantity>,
    constraints: Vec<Constraint>,
    seeds: Vec<SeedValue>,
    specs: Vec<Spec>,
    voltage_of: Vec<QuantityId>,
}

impl Network {
    /// All quantities, indexable by [`QuantityId::index`].
    #[must_use]
    pub fn quantities(&self) -> &[Quantity] {
        &self.quantities
    }

    /// All constraints.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Initial (seed) values — parameters under their component's
    /// correctness assumption, plus the ground reference.
    #[must_use]
    pub fn seeds(&self) -> &[SeedValue] {
        &self.seeds
    }

    /// Fuzzy specification conditions.
    #[must_use]
    pub fn specs(&self) -> &[Spec] {
        &self.specs
    }

    /// The quantity holding the voltage of `net`.
    ///
    /// # Panics
    ///
    /// Panics if the net does not belong to the source netlist.
    #[must_use]
    pub fn voltage_quantity(&self, net: Net) -> QuantityId {
        self.voltage_of[net.index()]
    }

    /// Finds a quantity by kind.
    #[must_use]
    pub fn find(&self, kind: QuantityKind) -> Option<QuantityId> {
        self.quantities
            .iter()
            .position(|q| q.kind == kind)
            .map(|i| QuantityId(i as u32))
    }

    /// The name of a quantity.
    ///
    /// # Panics
    ///
    /// Panics for a foreign quantity id.
    #[must_use]
    pub fn quantity_name(&self, q: QuantityId) -> &str {
        &self.quantities[q.index()].name
    }

    /// Number of quantities.
    #[must_use]
    pub fn quantity_count(&self) -> usize {
        self.quantities.len()
    }

    /// Quantity → constraint adjacency: for each quantity index, the
    /// indices of the constraints whose relation mentions it. Engines
    /// build this once and drive their dirty-constraint requeue loops
    /// from it instead of rescanning every constraint (and re-collecting
    /// every relation's quantity list) per changed quantity.
    #[must_use]
    pub fn quantity_consumers(&self) -> Vec<Vec<u32>> {
        let mut consumers = vec![Vec::new(); self.quantities.len()];
        for (ci, c) in self.constraints.iter().enumerate() {
            let ci = u32::try_from(ci).expect("< 2^32 constraints");
            for q in c.relation.quantities() {
                let list = &mut consumers[q.index()];
                if list.last() != Some(&ci) {
                    list.push(ci);
                }
            }
        }
        consumers
    }

    /// Adds a fuzzy specification condition (builders use this to encode
    /// datasheet limits like the Fig. 5 diode-current spec).
    pub fn add_spec(
        &mut self,
        name: impl Into<String>,
        quantity: QuantityId,
        condition: FuzzyInterval,
        support: Vec<CompId>,
    ) {
        self.specs.push(Spec {
            quantity,
            condition,
            support,
            name: name.into(),
        });
    }

    /// Adds an extra seed value (builders use this for externally-known
    /// inputs).
    pub fn add_seed(&mut self, quantity: QuantityId, value: FuzzyInterval, support: Vec<CompId>) {
        self.seeds.push(SeedValue {
            quantity,
            value,
            support,
        });
    }

    /// A filtered clone for the region-sharded engine: the *full*
    /// quantity list (so `QuantityId`s keep their global meaning and a
    /// shard's label columns line up with everyone else's) but only the
    /// constraints, seeds and specs whose flag is set — in their
    /// original relative order, which is what keeps a one-shard
    /// restriction byte-identical to the unrestricted network.
    ///
    /// # Panics
    ///
    /// Panics if a flag slice does not match the corresponding list.
    #[must_use]
    pub fn restricted(
        &self,
        keep_constraint: &[bool],
        keep_seed: &[bool],
        keep_spec: &[bool],
    ) -> Network {
        fn keep<T: Clone>(items: &[T], flags: &[bool]) -> Vec<T> {
            assert_eq!(flags.len(), items.len(), "flag slice mismatch");
            items
                .iter()
                .zip(flags)
                .filter(|&(_, &k)| k)
                .map(|(t, _)| t.clone())
                .collect()
        }
        Network {
            quantities: self.quantities.clone(),
            constraints: keep(&self.constraints, keep_constraint),
            seeds: keep(&self.seeds, keep_seed),
            specs: keep(&self.specs, keep_spec),
            voltage_of: self.voltage_of.clone(),
        }
    }

    fn push_quantity(&mut self, name: String, kind: QuantityKind) -> QuantityId {
        let id = QuantityId(u32::try_from(self.quantities.len()).expect("< 2^32 quantities"));
        self.quantities.push(Quantity { name, kind });
        id
    }
}

/// Options controlling model extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractOptions {
    /// Relative tolerance used for parameters whose component declares
    /// zero tolerance (keeps every divisor's support away from zero
    /// width). Default `0.0` (exact).
    pub default_tolerance: f64,
    /// Whether to emit KCL constraints with connection assumptions.
    /// Default `true`.
    pub kirchhoff: bool,
    /// Whether independent sources are *trusted* (their levels hold as
    /// premises, outside the assumption vocabulary). The paper's Fig. 7
    /// suspect sets exclude the supply, so this defaults to `true`; set
    /// it to `false` to let stimulus faults enter candidate sets.
    pub trust_sources: bool,
    /// Encode parameter tolerances as crisp interval *width*
    /// (`[m·(1−tol), m·(1+tol)]` with zero fuzzy spread — DIANA-style
    /// rectangular modeling) instead of the default fuzzy spreads
    /// around a crisp core. With rectangular seeds every consistency
    /// degree collapses to {0, 1}, which makes the fuzzy engine
    /// directly comparable to the crisp-interval baseline. Default
    /// `false`.
    pub interval_tolerance: bool,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        Self {
            default_tolerance: 0.0,
            kirchhoff: true,
            trust_sources: true,
            interval_tolerance: false,
        }
    }
}

/// Nominal-parameter seed under the selected tolerance encoding.
fn param_seed(nominal: f64, tol: f64, options: ExtractOptions) -> FuzzyInterval {
    if options.interval_tolerance {
        let half = tol * nominal.abs();
        FuzzyInterval::crisp_interval(nominal - half, nominal + half).expect("valid tolerance")
    } else {
        FuzzyInterval::with_tolerance(nominal, tol).expect("valid tolerance")
    }
}

/// Extracts the constraint network (model database) from a netlist.
///
/// Emitted models:
///
/// * ground reference `V(gnd) = 0` (premise seed);
/// * per component, the constraints listed in the paper's §6.2 style:
///   Ohm's law products, source levels, diode drops, the
///   `Vbe`/`Ic = β·Ib` transistor model, amplifier gains — each supported
///   by the component's correctness assumption, with fuzzy nominal
///   parameters seeded under the same assumption;
/// * per non-ground net, a Kirchhoff current law carrying that net's
///   connection assumption.
#[must_use]
pub fn extract(netlist: &Netlist, options: ExtractOptions) -> Network {
    flames_obs::metrics().models_extracted.incr();
    let mut net_work = Network::default();
    let nw = &mut net_work;

    // Node-voltage quantities.
    for net in netlist.nets() {
        let q = nw.push_quantity(
            format!("V({})", netlist.net_name(net)),
            QuantityKind::NodeVoltage(net),
        );
        nw.voltage_of.push(q);
    }
    // Ground reference.
    let vg = nw.voltage_of[Net::GROUND.index()];
    nw.seeds.push(SeedValue {
        quantity: vg,
        value: FuzzyInterval::crisp(0.0),
        support: Vec::new(),
    });

    // KCL bookkeeping: per net, (sign, current quantity).
    let mut kcl: Vec<Vec<(f64, QuantityId)>> = vec![Vec::new(); netlist.net_count()];

    for (id, comp) in netlist.components() {
        let name = comp.name().to_owned();
        let tol = if comp.tolerance() > 0.0 {
            comp.tolerance()
        } else {
            options.default_tolerance
        };
        match *comp.kind() {
            ComponentKind::Resistor { a, b, ohms } => {
                let i = nw.push_quantity(format!("I({name})"), QuantityKind::BranchCurrent(id));
                let d = nw.push_quantity(format!("Vd({name})"), QuantityKind::BranchDrop(id));
                let r = nw.push_quantity(format!("R({name})"), QuantityKind::Param(id));
                nw.seeds.push(SeedValue {
                    quantity: r,
                    value: param_seed(ohms, tol, options),
                    support: vec![id],
                });
                let (va, vb) = (nw.voltage_of[a.index()], nw.voltage_of[b.index()]);
                nw.constraints.push(Constraint {
                    relation: Relation::Linear {
                        terms: vec![(1.0, va), (-1.0, vb), (-1.0, d)],
                        bias: 0.0,
                    },
                    support: Vec::new(),
                    conn: None,
                    name: format!("drop({name})"),
                });
                nw.constraints.push(Constraint {
                    relation: Relation::Product { p: d, x: i, y: r },
                    support: vec![id],
                    conn: None,
                    name: format!("Ohm({name})"),
                });
                kcl[a.index()].push((1.0, i));
                kcl[b.index()].push((-1.0, i));
            }
            ComponentKind::Capacitor { .. } => {
                // Open at DC: the capacitor contributes no steady-state
                // model (its dynamic-mode behaviour lives in `ac`).
            }
            ComponentKind::Inductor { a, b, .. } => {
                // A short at DC: zero drop under the inductor's
                // correctness assumption; its current joins the KCLs.
                let i = nw.push_quantity(format!("I({name})"), QuantityKind::BranchCurrent(id));
                let (va, vb) = (nw.voltage_of[a.index()], nw.voltage_of[b.index()]);
                nw.constraints.push(Constraint {
                    relation: Relation::Linear {
                        terms: vec![(1.0, va), (-1.0, vb)],
                        bias: 0.0,
                    },
                    support: vec![id],
                    conn: None,
                    name: format!("short({name})"),
                });
                kcl[a.index()].push((1.0, i));
                kcl[b.index()].push((-1.0, i));
            }
            ComponentKind::VoltageSource { plus, minus, volts } => {
                let i = nw.push_quantity(format!("I({name})"), QuantityKind::BranchCurrent(id));
                let (vp, vm) = (nw.voltage_of[plus.index()], nw.voltage_of[minus.index()]);
                let support = if options.trust_sources {
                    Vec::new()
                } else {
                    vec![id]
                };
                nw.constraints.push(Constraint {
                    relation: Relation::Linear {
                        terms: vec![(1.0, vp), (-1.0, vm)],
                        bias: -volts,
                    },
                    support,
                    conn: None,
                    name: format!("level({name})"),
                });
                kcl[plus.index()].push((1.0, i));
                kcl[minus.index()].push((-1.0, i));
            }
            ComponentKind::CurrentSource { from, to, amps } => {
                let i = nw.push_quantity(format!("I({name})"), QuantityKind::BranchCurrent(id));
                let support = if options.trust_sources {
                    Vec::new()
                } else {
                    vec![id]
                };
                nw.constraints.push(Constraint {
                    relation: Relation::Linear {
                        terms: vec![(1.0, i)],
                        bias: -amps,
                    },
                    support,
                    conn: None,
                    name: format!("level({name})"),
                });
                kcl[from.index()].push((1.0, i));
                kcl[to.index()].push((-1.0, i));
            }
            ComponentKind::Diode {
                anode,
                cathode,
                drop_volts,
            } => {
                let i = nw.push_quantity(format!("I({name})"), QuantityKind::BranchCurrent(id));
                let (va, vk) = (nw.voltage_of[anode.index()], nw.voltage_of[cathode.index()]);
                nw.constraints.push(Constraint {
                    relation: Relation::Linear {
                        terms: vec![(1.0, va), (-1.0, vk)],
                        bias: -drop_volts,
                    },
                    support: vec![id],
                    conn: None,
                    name: format!("drop({name})"),
                });
                kcl[anode.index()].push((1.0, i));
                kcl[cathode.index()].push((-1.0, i));
            }
            ComponentKind::Npn {
                collector,
                base,
                emitter,
                beta,
                vbe,
            } => {
                let ib = nw.push_quantity(format!("Ib({name})"), QuantityKind::BaseCurrent(id));
                let ic =
                    nw.push_quantity(format!("Ic({name})"), QuantityKind::CollectorCurrent(id));
                let ie = nw.push_quantity(format!("Ie({name})"), QuantityKind::EmitterCurrent(id));
                let bq = nw.push_quantity(format!("beta({name})"), QuantityKind::Param(id));
                nw.seeds.push(SeedValue {
                    quantity: bq,
                    value: param_seed(beta, tol, options),
                    support: vec![id],
                });
                let (vb_, ve) = (nw.voltage_of[base.index()], nw.voltage_of[emitter.index()]);
                nw.constraints.push(Constraint {
                    relation: Relation::Linear {
                        terms: vec![(1.0, vb_), (-1.0, ve)],
                        bias: -vbe,
                    },
                    support: vec![id],
                    conn: None,
                    name: format!("Vbe({name})"),
                });
                nw.constraints.push(Constraint {
                    relation: Relation::Product {
                        p: ic,
                        x: bq,
                        y: ib,
                    },
                    support: vec![id],
                    conn: None,
                    name: format!("gain({name})"),
                });
                nw.constraints.push(Constraint {
                    relation: Relation::Linear {
                        terms: vec![(1.0, ie), (-1.0, ic), (-1.0, ib)],
                        bias: 0.0,
                    },
                    support: vec![id],
                    conn: None,
                    name: format!("KCL({name})"),
                });
                // Redundant emitter-gain form `Ie = (β+1)·Ib`: local
                // propagation cannot substitute `Ic = β·Ib` into the
                // device KCL by itself, and this derived model restores
                // the paper's stage-wise reasoning from emitter-side
                // measurements.
                let bq1 = nw.push_quantity(format!("beta+1({name})"), QuantityKind::Param(id));
                nw.seeds.push(SeedValue {
                    quantity: bq1,
                    value: FuzzyInterval::new(beta + 1.0, beta + 1.0, tol * beta, tol * beta)
                        .expect("valid tolerance"),
                    support: vec![id],
                });
                nw.constraints.push(Constraint {
                    relation: Relation::Product {
                        p: ie,
                        x: bq1,
                        y: ib,
                    },
                    support: vec![id],
                    conn: None,
                    name: format!("emitter-gain({name})"),
                });
                kcl[base.index()].push((1.0, ib));
                kcl[collector.index()].push((1.0, ic));
                kcl[emitter.index()].push((-1.0, ie));
            }
            ComponentKind::Gain {
                input,
                output,
                gain,
            } => {
                let i = nw.push_quantity(format!("I({name})"), QuantityKind::BranchCurrent(id));
                let g = nw.push_quantity(format!("G({name})"), QuantityKind::Param(id));
                nw.seeds.push(SeedValue {
                    quantity: g,
                    value: param_seed(gain, tol, options),
                    support: vec![id],
                });
                let (vi, vo) = (nw.voltage_of[input.index()], nw.voltage_of[output.index()]);
                nw.constraints.push(Constraint {
                    relation: Relation::Product { p: vo, x: g, y: vi },
                    support: vec![id],
                    conn: None,
                    name: format!("gain({name})"),
                });
                // Ideal output source current participates in the output KCL.
                kcl[output.index()].push((-1.0, i));
            }
        }
    }

    if options.kirchhoff {
        for net in netlist.nets() {
            if net.is_ground() {
                continue;
            }
            let terms = &kcl[net.index()];
            if terms.len() < 2 {
                continue; // dangling net: no usable KCL
            }
            nw.constraints.push(Constraint {
                relation: Relation::Linear {
                    terms: terms.clone(),
                    bias: 0.0,
                },
                support: Vec::new(),
                conn: Some(net),
                name: format!("KCL({})", netlist.net_name(net)),
            });
        }
    }

    net_work
}

#[cfg(test)]
mod tests {
    use super::*;

    fn divider() -> (Netlist, Net, Net) {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        nl.add_resistor("R1", vin, mid, 1e3, 0.05).unwrap();
        nl.add_resistor("R2", mid, Net::GROUND, 1e3, 0.05).unwrap();
        (nl, vin, mid)
    }

    #[test]
    fn extracts_quantities_and_ground_seed() {
        let (nl, _, mid) = divider();
        let net = extract(&nl, ExtractOptions::default());
        // 3 node voltages + per resistor (I, Vd, R) ×2 + source current.
        assert_eq!(net.quantity_count(), 3 + 3 + 3 + 1);
        let vq = net.voltage_quantity(Net::GROUND);
        let ground_seed = net
            .seeds()
            .iter()
            .find(|s| s.quantity == vq)
            .expect("ground seed");
        assert!(ground_seed.value.is_point());
        assert!(ground_seed.support.is_empty());
        assert_eq!(net.quantity_name(net.voltage_quantity(mid)), "V(mid)");
    }

    #[test]
    fn resistor_params_are_fuzzy_under_own_assumption() {
        let (nl, ..) = divider();
        let net = extract(&nl, ExtractOptions::default());
        let r1 = nl.component_by_name("R1").unwrap();
        let rq = net.find(QuantityKind::Param(r1)).unwrap();
        let seed = net.seeds().iter().find(|s| s.quantity == rq).unwrap();
        assert_eq!(seed.support, vec![r1]);
        assert_eq!(seed.value.core(), (1e3, 1e3));
        assert_eq!(seed.value.spread_left(), 50.0); // 5 % of 1k
    }

    #[test]
    fn kcl_constraints_carry_connection_assumption() {
        let (nl, vin, mid) = divider();
        let net = extract(&nl, ExtractOptions::default());
        let kcls: Vec<_> = net
            .constraints()
            .iter()
            .filter(|c| c.conn.is_some())
            .collect();
        assert_eq!(kcls.len(), 2);
        let nets: Vec<Net> = kcls.iter().map(|c| c.conn.unwrap()).collect();
        assert!(nets.contains(&vin));
        assert!(nets.contains(&mid));
        // KCL at mid: I(R1) − I(R2) = 0 (two terms).
        let kcl_mid = kcls.iter().find(|c| c.conn == Some(mid)).unwrap();
        match &kcl_mid.relation {
            Relation::Linear { terms, bias } => {
                assert_eq!(terms.len(), 2);
                assert_eq!(*bias, 0.0);
            }
            Relation::Product { .. } => panic!("KCL must be linear"),
        }
    }

    #[test]
    fn kirchhoff_can_be_disabled() {
        let (nl, ..) = divider();
        let net = extract(
            &nl,
            ExtractOptions {
                kirchhoff: false,
                ..Default::default()
            },
        );
        assert!(net.constraints().iter().all(|c| c.conn.is_none()));
    }

    #[test]
    fn npn_emits_three_constraints_and_beta_seed() {
        let mut nl = Netlist::new();
        let c = nl.add_net("c");
        let b = nl.add_net("b");
        let t = nl
            .add_npn("T1", c, b, Net::GROUND, 200.0, 0.7, 0.05)
            .unwrap();
        let net = extract(&nl, ExtractOptions::default());
        let names: Vec<&str> = net.constraints().iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"Vbe(T1)"));
        assert!(names.contains(&"gain(T1)"));
        assert!(names.contains(&"KCL(T1)"));
        let beta_q = net.find(QuantityKind::Param(t)).unwrap();
        let seed = net.seeds().iter().find(|s| s.quantity == beta_q).unwrap();
        assert_eq!(seed.value.core_midpoint(), 200.0);
        assert_eq!(seed.value.spread_left(), 10.0);
        // Every transistor constraint is supported by T1.
        for cst in net.constraints().iter().filter(|c| c.name.contains("T1")) {
            assert_eq!(cst.support, vec![t]);
        }
    }

    #[test]
    fn specs_and_extra_seeds() {
        let (nl, vin, _) = divider();
        let mut net = extract(&nl, ExtractOptions::default());
        let r1 = nl.component_by_name("R1").unwrap();
        let iq = net.find(QuantityKind::BranchCurrent(r1)).unwrap();
        let cond = FuzzyInterval::new(-1.0, 100.0, 0.0, 10.0).unwrap();
        net.add_spec("Imax(R1)", iq, cond, vec![r1]);
        assert_eq!(net.specs().len(), 1);
        assert_eq!(net.specs()[0].name, "Imax(R1)");
        let before = net.seeds().len();
        net.add_seed(
            net.voltage_quantity(vin),
            FuzzyInterval::crisp(10.0),
            vec![],
        );
        assert_eq!(net.seeds().len(), before + 1);
    }

    #[test]
    fn default_tolerance_applies_to_zero_tolerance_components() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        nl.add_resistor("R", a, Net::GROUND, 100.0, 0.0).unwrap();
        let net = extract(
            &nl,
            ExtractOptions {
                default_tolerance: 0.02,
                ..Default::default()
            },
        );
        let r = nl.component_by_name("R").unwrap();
        let rq = net.find(QuantityKind::Param(r)).unwrap();
        let seed = net.seeds().iter().find(|s| s.quantity == rq).unwrap();
        assert_eq!(seed.value.spread_left(), 2.0);
    }

    #[test]
    fn quantity_consumers_matches_relations() {
        let (nl, ..) = divider();
        let net = extract(&nl, ExtractOptions::default());
        let consumers = net.quantity_consumers();
        assert_eq!(consumers.len(), net.quantity_count());
        for (qi, list) in consumers.iter().enumerate() {
            let q = QuantityId::from_raw(qi);
            for &ci in list {
                let c = &net.constraints()[ci as usize];
                assert!(c.relation.quantities().contains(&q));
            }
            // Completeness: every constraint mentioning q is listed.
            for (ci, c) in net.constraints().iter().enumerate() {
                if c.relation.quantities().contains(&q) {
                    assert!(list.contains(&(ci as u32)));
                }
            }
        }
    }

    #[test]
    fn relation_quantities_listed() {
        let (nl, ..) = divider();
        let net = extract(&nl, ExtractOptions::default());
        for c in net.constraints() {
            let qs = c.relation.quantities();
            assert!(!qs.is_empty());
            for q in qs {
                assert!(q.index() < net.quantity_count());
            }
        }
    }
}
