//! The shared source/node/tolerance plumbing behind the generated
//! circuit families.
//!
//! Every generator in this module used to repeat the same boilerplate:
//! create a `"vin"` net, wire a `"Vin"` source against ground, walk a
//! running *cursor* net forward while naming nodes, and thread one
//! tolerance through every component. [`ChainBuilder`] centralizes that
//! walk so [`super::ladder`], [`super::cascade`], [`super::bandpass`]
//! and the hierarchical generator ([`super::hierarchy`]) all produce
//! their netlists through one code path — byte-identical to what the
//! hand-rolled loops emitted before.

use crate::netlist::{CompId, Net, Netlist};

/// An incremental netlist builder for source-driven chain topologies.
///
/// The builder keeps a *cursor*: the net the chain has reached so far.
/// Series elements advance the cursor; shunt elements hang off a node
/// without moving it. All `add_*` wrappers panic on netlist-builder
/// errors (duplicate names, invalid values) — generators construct
/// fresh names, so failures are programming errors, exactly as the
/// `expect("fresh name")` calls they replace.
#[derive(Debug, Clone)]
pub struct ChainBuilder {
    nl: Netlist,
    vin: Net,
    source: CompId,
    cursor: Net,
}

impl ChainBuilder {
    /// Starts a chain: a `"vin"` net driven by a `"Vin"` voltage source
    /// against ground. The cursor starts at `vin`.
    #[must_use]
    pub fn driven(volts: f64) -> Self {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let source = nl
            .add_voltage_source("Vin", vin, Net::GROUND, volts)
            .expect("fresh name");
        Self {
            nl,
            vin,
            source,
            cursor: vin,
        }
    }

    /// The input net.
    #[must_use]
    pub fn vin(&self) -> Net {
        self.vin
    }

    /// The driving source.
    #[must_use]
    pub fn source(&self) -> CompId {
        self.source
    }

    /// The net the chain has reached.
    #[must_use]
    pub fn cursor(&self) -> Net {
        self.cursor
    }

    /// Moves the cursor to an existing net (for branching topologies).
    pub fn jump(&mut self, net: Net) {
        self.cursor = net;
    }

    /// Declares a named net without touching the cursor.
    pub fn net(&mut self, name: impl Into<String>) -> Net {
        self.nl.add_net(name)
    }

    /// A series resistor from the cursor to `to`; advances the cursor.
    pub fn series_resistor(
        &mut self,
        name: impl Into<String>,
        to: Net,
        ohms: f64,
        tolerance: f64,
    ) -> CompId {
        let id = self
            .nl
            .add_resistor(name, self.cursor, to, ohms, tolerance)
            .expect("fresh name");
        self.cursor = to;
        id
    }

    /// A shunt resistor from `at` to ground; the cursor is unchanged.
    pub fn shunt_resistor(
        &mut self,
        name: impl Into<String>,
        at: Net,
        ohms: f64,
        tolerance: f64,
    ) -> CompId {
        self.nl
            .add_resistor(name, at, Net::GROUND, ohms, tolerance)
            .expect("fresh name")
    }

    /// A gain block from the cursor into `to`; advances the cursor.
    pub fn stage_gain(
        &mut self,
        name: impl Into<String>,
        to: Net,
        gain: f64,
        tolerance: f64,
    ) -> CompId {
        let id = self
            .nl
            .add_gain(name, self.cursor, to, gain, tolerance)
            .expect("fresh name");
        self.cursor = to;
        id
    }

    /// A series capacitor from the cursor to `to`; advances the cursor.
    pub fn series_capacitor(
        &mut self,
        name: impl Into<String>,
        to: Net,
        farads: f64,
        tolerance: f64,
    ) -> CompId {
        let id = self
            .nl
            .add_capacitor(name, self.cursor, to, farads, tolerance)
            .expect("fresh name");
        self.cursor = to;
        id
    }

    /// A shunt capacitor from `at` to ground; the cursor is unchanged.
    pub fn shunt_capacitor(
        &mut self,
        name: impl Into<String>,
        at: Net,
        farads: f64,
        tolerance: f64,
    ) -> CompId {
        self.nl
            .add_capacitor(name, at, Net::GROUND, farads, tolerance)
            .expect("fresh name")
    }

    /// Finishes the chain, returning the built netlist.
    #[must_use]
    pub fn finish(self) -> Netlist {
        self.nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::solve_dc;

    #[test]
    fn cursor_walks_series_elements() {
        let mut b = ChainBuilder::driven(10.0);
        assert_eq!(b.cursor(), b.vin());
        let mid = b.net("mid");
        b.series_resistor("R1", mid, 1e3, 0.0);
        assert_eq!(b.cursor(), mid);
        b.shunt_resistor("R2", mid, 1e3, 0.0);
        assert_eq!(b.cursor(), mid, "shunt must not advance the cursor");
        let nl = b.finish();
        let op = solve_dc(&nl).unwrap();
        assert!((op.voltage(mid) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn jump_rebases_the_chain() {
        let mut b = ChainBuilder::driven(1.0);
        let s1 = b.net("s1");
        b.stage_gain("A1", s1, 2.0, 0.0);
        b.jump(b.vin());
        let s2 = b.net("s2");
        b.stage_gain("A2", s2, 3.0, 0.0);
        let nl = b.finish();
        let op = solve_dc(&nl).unwrap();
        assert!((op.voltage(s1) - 2.0).abs() < 1e-6);
        assert!((op.voltage(s2) - 3.0).abs() < 1e-6);
    }
}
