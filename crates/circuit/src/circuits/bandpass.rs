use super::builder::ChainBuilder;
use crate::netlist::{CompId, Net, Netlist};

/// A band-pass chain for the **dynamic mode** experiments: a high-pass
/// section (`C1` into `R1`), a ×10 gain block, and a low-pass section
/// (`R2` into `C2`).
///
/// With the default values the passband runs from ≈1 kHz to ≈10 kHz at a
/// mid-band gain of ≈10; pole-shifting parametric faults on `C1`/`C2`
/// move the corners, which only shows up in the frequency response — the
/// static operating point is unaffected (every node sits at 0 V DC).
#[derive(Debug, Clone)]
pub struct Bandpass {
    /// The netlist.
    pub netlist: Netlist,
    /// The AC input source (0 V DC; drive it via [`crate::ac::solve_ac`]).
    pub input: CompId,
    /// Input net.
    pub vin: Net,
    /// High-pass output node.
    pub n1: Net,
    /// Gain-stage output node.
    pub n2: Net,
    /// Circuit output node.
    pub out: Net,
    /// Series input capacitor (100 nF).
    pub c1: CompId,
    /// High-pass shunt resistor (1.6 kΩ).
    pub r1: CompId,
    /// The ×10 gain block.
    pub amp: CompId,
    /// Low-pass series resistor (1.6 kΩ).
    pub r2: CompId,
    /// Low-pass shunt capacitor (10 nF).
    pub c2: CompId,
}

impl Bandpass {
    /// Lower corner frequency (≈1 kHz nominal).
    #[must_use]
    pub fn low_corner_hz(&self) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * 1.6e3 * 100e-9)
    }

    /// Upper corner frequency (≈10 kHz nominal).
    #[must_use]
    pub fn high_corner_hz(&self) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * 1.6e3 * 10e-9)
    }
}

/// Builds the band-pass chain with the given relative component
/// tolerance.
///
/// # Panics
///
/// Panics if `tolerance` is outside `[0, 1)`.
#[must_use]
pub fn bandpass(tolerance: f64) -> Bandpass {
    let mut b = ChainBuilder::driven(0.0);
    let vin = b.vin();
    let n1 = b.net("n1");
    let n2 = b.net("n2");
    let out = b.net("out");
    let input = b.source();
    let c1 = b.series_capacitor("C1", n1, 100e-9, tolerance);
    let r1 = b.shunt_resistor("R1", n1, 1.6e3, tolerance);
    let amp = b.stage_gain("A", n2, 10.0, tolerance);
    let r2 = b.series_resistor("R2", out, 1.6e3, tolerance);
    let c2 = b.shunt_capacitor("C2", out, 10e-9, tolerance);
    Bandpass {
        netlist: b.finish(),
        input,
        vin,
        n1,
        n2,
        out,
        c1,
        r1,
        amp,
        r2,
        c2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ac::solve_ac;
    use crate::fault::{inject_faults, Fault};
    use crate::solve::solve_dc;

    #[test]
    fn dc_operating_point_is_flat() {
        let bp = bandpass(0.05);
        let op = solve_dc(&bp.netlist).unwrap();
        for net in [bp.n1, bp.n2, bp.out] {
            assert!(op.voltage(net).abs() < 1e-6, "{net}");
        }
    }

    #[test]
    fn midband_gain_is_ten() {
        let bp = bandpass(0.05);
        let mid = (bp.low_corner_hz() * bp.high_corner_hz()).sqrt();
        let sol = solve_ac(&bp.netlist, bp.input, 1.0, mid).unwrap();
        let gain = sol.amplitude(bp.out);
        assert!(gain > 8.5 && gain <= 10.0, "mid-band gain {gain}");
    }

    #[test]
    fn skirts_roll_off() {
        let bp = bandpass(0.05);
        let low = solve_ac(&bp.netlist, bp.input, 1.0, bp.low_corner_hz() / 20.0).unwrap();
        let high = solve_ac(&bp.netlist, bp.input, 1.0, bp.high_corner_hz() * 20.0).unwrap();
        assert!(low.amplitude(bp.out) < 1.0);
        assert!(high.amplitude(bp.out) < 1.0);
    }

    #[test]
    fn pole_shift_fault_is_invisible_at_dc() {
        let bp = bandpass(0.05);
        let bad = inject_faults(&bp.netlist, &[(bp.c2, Fault::ParamFactor(3.0))]).unwrap();
        let healthy_dc = solve_dc(&bp.netlist).unwrap();
        let faulty_dc = solve_dc(&bad).unwrap();
        assert!((healthy_dc.voltage(bp.out) - faulty_dc.voltage(bp.out)).abs() < 1e-9);
        // …but clearly visible at the upper corner.
        let f = bp.high_corner_hz();
        let healthy = solve_ac(&bp.netlist, bp.input, 1.0, f).unwrap();
        let faulty = solve_ac(&bad, bp.input, 1.0, f).unwrap();
        assert!(
            (healthy.amplitude(bp.out) - faulty.amplitude(bp.out)).abs() > 1.0,
            "pole shift must move the response"
        );
    }
}
