//! Hierarchical board generator for the region-sharded engine: a
//! backbone distribution ladder fanning out into per-tap amplifier/filter
//! blocks, deterministic from a seed + spec.
//!
//! Real boards have thousands of components organized as subcircuits;
//! this generator instantiates that shape from the primitives the small
//! circuits already use (the bilateral ladder of [`super::ladder`], the
//! divider/gain sections of [`super::bandpass`] and [`super::cascade`]):
//!
//! * a **backbone**: a `B`-section bilateral resistive ladder from a
//!   10 V source — series resistances small against the shunts so every
//!   tap sits at a useful voltage;
//! * per tap, an **isolation gain** driving a **block** of `S` repeated
//!   filter sections (series R → shunt R divider → gain). Gain inputs
//!   draw no current, so blocks do not load the backbone and each
//!   section's divider is unloaded.
//!
//! That electrical structure is what makes the hierarchy *compositional*:
//! the backbone solves exactly on a small standalone replica
//! ([`Hierarchy::readings`] never builds the dense 5k×5k MNA system),
//! and block voltages follow in closed form section by section. The same
//! structure gives the region partition its boundary: in the
//! boundary-sparse partition each block shares exactly one quantity with
//! the backbone (its tap voltage), while the boundary-dense partition
//! slices the bilateral backbone itself.
//!
//! All component values are drawn from an inlined SplitMix64 stream, so
//! the same `(seed, spec)` reproduces the netlist byte for byte.

use super::builder::ChainBuilder;
use crate::netlist::{CompId, ComponentKind, Net, Netlist};
use crate::predict::{nominal_predictions, TestPoint};
use crate::solve::solve_dc;
use crate::Result;
use flames_fuzzy::FuzzyInterval;

/// Shape of a generated hierarchical board.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchySpec {
    /// Backbone ladder sections (= number of taps = number of blocks).
    pub backbone_sections: usize,
    /// Filter sections per block.
    pub block_sections: usize,
    /// Relative component tolerance.
    pub tolerance: f64,
    /// PRNG seed for the component values.
    pub seed: u64,
}

impl HierarchySpec {
    /// The scaling-gate board: 64 taps × 26-section blocks =
    /// 1 + 2·64 + 64·(1 + 3·26) = 5185 components.
    #[must_use]
    pub fn large(seed: u64) -> Self {
        Self {
            backbone_sections: 64,
            block_sections: 26,
            tolerance: 0.01,
            seed,
        }
    }

    /// A small board for tests (fast to solve exactly).
    #[must_use]
    pub fn small(seed: u64) -> Self {
        Self {
            backbone_sections: 4,
            block_sections: 3,
            tolerance: 0.01,
            seed,
        }
    }

    /// Total component count of the generated netlist.
    #[must_use]
    pub fn component_count(&self) -> usize {
        1 + 2 * self.backbone_sections + self.backbone_sections * (1 + 3 * self.block_sections)
    }
}

/// A generated hierarchical board (see the module docs for the shape).
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// The generating spec.
    pub spec: HierarchySpec,
    /// The flat netlist of the whole board.
    pub netlist: Netlist,
    /// Input net (10 V source).
    pub vin: Net,
    /// Backbone tap nets `bb1 … bbB`.
    pub taps: Vec<Net>,
    /// Backbone series resistors.
    pub backbone_series: Vec<CompId>,
    /// Backbone shunt resistors.
    pub backbone_shunt: Vec<CompId>,
    /// Per-block component lists: the isolation gain first, then each
    /// section's series R, shunt R, gain in order.
    pub blocks: Vec<Vec<CompId>>,
    /// Per-block output nets (the last section's gain output).
    pub block_outs: Vec<Net>,
    /// Test points: backbone taps `B1 … BB` first, then block outputs
    /// `C1 … CB`.
    pub test_points: Vec<TestPoint>,
}

/// SplitMix64, inlined so the generator stays dependency-free (the
/// bench crate has its own copy; `flames-circuit` cannot depend on it).
struct ValueStream {
    state: u64,
}

impl ValueStream {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * unit
    }
}

/// Generates a hierarchical board from a spec. Deterministic: the same
/// spec (including its seed) reproduces the netlist byte for byte.
///
/// # Panics
///
/// Panics on a degenerate spec (no sections).
#[must_use]
pub fn hierarchy(spec: HierarchySpec) -> Hierarchy {
    assert!(spec.backbone_sections >= 1, "a hierarchy needs taps");
    assert!(spec.block_sections >= 1, "blocks need at least one section");
    let b_sections = spec.backbone_sections;
    let mut rng = ValueStream::new(spec.seed);
    let mut b = ChainBuilder::driven(10.0);
    let vin = b.vin();

    // Backbone: series resistances small against the shunts, so tap
    // voltages stay at volt level over many sections.
    let mut taps = Vec::with_capacity(b_sections);
    let mut backbone_series = Vec::with_capacity(b_sections);
    let mut backbone_shunt = Vec::with_capacity(b_sections);
    let mut backbone_cone: Vec<CompId> = Vec::new();
    let mut test_points = Vec::with_capacity(2 * b_sections);
    for k in 1..=b_sections {
        let tap = b.net(format!("bb{k}"));
        let rs = b.series_resistor(
            format!("BRs{k}"),
            tap,
            rng.range(80.0, 120.0),
            spec.tolerance,
        );
        let rp = b.shunt_resistor(
            format!("BRp{k}"),
            tap,
            rng.range(18e3, 22e3),
            spec.tolerance,
        );
        backbone_series.push(rs);
        backbone_shunt.push(rp);
        backbone_cone.push(rs);
        backbone_cone.push(rp);
        taps.push(tap);
        test_points.push(TestPoint::new(tap, format!("B{k}"), backbone_cone.clone()));
    }

    // Blocks: isolation gain into S divider/gain sections. Each section
    // gain compensates its own divider (times a small random factor), so
    // block outputs stay at the tap's order of magnitude.
    let mut blocks = Vec::with_capacity(b_sections);
    let mut block_outs = Vec::with_capacity(b_sections);
    for blk in 1..=b_sections {
        b.jump(taps[blk - 1]);
        let mut comps = Vec::with_capacity(1 + 3 * spec.block_sections);
        let input = b.net(format!("c{blk}i"));
        comps.push(b.stage_gain(
            format!("U{blk}"),
            input,
            rng.range(0.9, 1.1),
            spec.tolerance,
        ));
        for s in 1..=spec.block_sections {
            let node = b.net(format!("c{blk}n{s}"));
            let out = b.net(format!("c{blk}g{s}"));
            let rs = rng.range(800.0, 1200.0);
            let rp = rng.range(1600.0, 2400.0);
            let g = (rs + rp) / rp * rng.range(0.97, 1.03);
            comps.push(b.series_resistor(format!("c{blk}Rs{s}"), node, rs, spec.tolerance));
            comps.push(b.shunt_resistor(format!("c{blk}Rp{s}"), node, rp, spec.tolerance));
            comps.push(b.stage_gain(format!("c{blk}A{s}"), out, g, spec.tolerance));
        }
        let out = b.cursor();
        let mut cone = backbone_cone[..2 * blk].to_vec();
        cone.extend_from_slice(&comps);
        test_points.push(TestPoint::new(out, format!("C{blk}"), cone));
        block_outs.push(out);
        blocks.push(comps);
    }

    Hierarchy {
        spec,
        netlist: b.finish(),
        vin,
        taps,
        backbone_series,
        backbone_shunt,
        blocks,
        block_outs,
        test_points,
    }
}

fn resistance(netlist: &Netlist, id: CompId) -> f64 {
    match netlist.component(id).kind() {
        ComponentKind::Resistor { ohms, .. } => *ohms,
        other => panic!("expected a resistor, found {other:?}"),
    }
}

fn gain_of(netlist: &Netlist, id: CompId) -> f64 {
    match netlist.component(id).kind() {
        ComponentKind::Gain { gain, .. } => *gain,
        other => panic!("expected a gain block, found {other:?}"),
    }
}

impl Hierarchy {
    /// Sparse region map (component index → region): region 0 is the
    /// source plus the whole backbone; region `b` is block `b`. The only
    /// quantities shared between a block region and the backbone region
    /// are its tap voltage and the quantities of the tap's KCL — the
    /// boundary-sparse cut of the shard benches.
    #[must_use]
    pub fn sparse_regions(&self) -> (Vec<u32>, usize) {
        let mut regions = vec![0u32; self.netlist.component_count()];
        for (blk, comps) in self.blocks.iter().enumerate() {
            for &c in comps {
                regions[c.index()] = (blk + 1) as u32;
            }
        }
        (regions, self.spec.backbone_sections + 1)
    }

    /// Dense region map: vertical slices — backbone section `k` *and*
    /// block `k` share region `k−1` (the source joins region 0). Every
    /// internal backbone node is then shared between two regions, so a
    /// cut crosses the bilateral ladder at every slice — the
    /// boundary-dense workload.
    #[must_use]
    pub fn dense_regions(&self) -> (Vec<u32>, usize) {
        let mut regions = vec![0u32; self.netlist.component_count()];
        for k in 0..self.spec.backbone_sections {
            regions[self.backbone_series[k].index()] = k as u32;
            regions[self.backbone_shunt[k].index()] = k as u32;
            for &c in &self.blocks[k] {
                regions[c.index()] = k as u32;
            }
        }
        (regions, self.spec.backbone_sections)
    }

    /// A standalone replica of the backbone (source + ladder only), with
    /// component values read from `board` — pass a faulted copy of
    /// [`Hierarchy::netlist`] to replicate the faulted backbone. Blocks
    /// draw no current, so the replica's operating point equals the full
    /// board's exactly. Returns the replica and its tap nets.
    #[must_use]
    pub fn backbone_replica(&self, board: &Netlist) -> (Netlist, Vec<Net>) {
        let volts = match board
            .component(board.component_by_name("Vin").expect("source exists"))
            .kind()
        {
            ComponentKind::VoltageSource { volts, .. } => *volts,
            other => panic!("expected the source, found {other:?}"),
        };
        let mut b = ChainBuilder::driven(volts);
        let mut taps = Vec::with_capacity(self.spec.backbone_sections);
        for k in 0..self.spec.backbone_sections {
            let tap = b.net(format!("bb{}", k + 1));
            b.series_resistor(
                format!("BRs{}", k + 1),
                tap,
                resistance(board, self.backbone_series[k]),
                self.spec.tolerance,
            );
            b.shunt_resistor(
                format!("BRp{}", k + 1),
                tap,
                resistance(board, self.backbone_shunt[k]),
                self.spec.tolerance,
            );
            taps.push(tap);
        }
        (b.finish(), taps)
    }

    /// The exact transfer factor of block `blk` (0-based) with component
    /// values read from `board`: isolation gain × per-section unloaded
    /// divider × section gain.
    #[must_use]
    pub fn block_transfer(&self, board: &Netlist, blk: usize) -> f64 {
        let comps = &self.blocks[blk];
        let mut t = gain_of(board, comps[0]);
        for s in 0..self.spec.block_sections {
            let rs = resistance(board, comps[1 + 3 * s]);
            let rp = resistance(board, comps[2 + 3 * s]);
            let g = gain_of(board, comps[3 + 3 * s]);
            t *= rp / (rs + rp) * g;
        }
        t
    }

    /// Fuzzy nominal predictions for every test point (taps first, then
    /// block outputs), computed compositionally: tolerance-corner solves
    /// on the backbone replica, then analytic sensitivity accumulation
    /// through each block — never a dense solve of the full board.
    ///
    /// # Errors
    ///
    /// Propagates replica solver failures.
    pub fn predictions(&self) -> Result<Vec<FuzzyInterval>> {
        let (replica, taps) = self.backbone_replica(&self.netlist);
        let tap_preds = nominal_predictions(&replica, &taps)?;
        let mut out = tap_preds.clone();
        for (blk, tap) in tap_preds.iter().enumerate() {
            let v_tap = tap.core_midpoint();
            let rel_tap = tap.spread_left().max(tap.spread_right()) / v_tap.abs().max(1e-12);
            // One-at-a-time worst-case log-sensitivities: 1 per gain,
            // Rs/(Rs+Rp) for each divider resistor.
            let comps = &self.blocks[blk];
            let mut sens = 1.0; // the isolation gain
            for s in 0..self.spec.block_sections {
                let rs = resistance(&self.netlist, comps[1 + 3 * s]);
                let rp = resistance(&self.netlist, comps[2 + 3 * s]);
                sens += 1.0 + 2.0 * rs / (rs + rp);
            }
            let v = v_tap * self.block_transfer(&self.netlist, blk);
            let rel = rel_tap + sens * self.spec.tolerance;
            let spread = v.abs() * rel;
            out.push(FuzzyInterval::new(v, v, spread, spread).expect("non-negative spreads"));
        }
        Ok(out)
    }

    /// Simulated measurements at every test point of a (possibly
    /// faulted) copy of the board: the backbone replica is solved
    /// exactly, block outputs follow in closed form, and each reading is
    /// wrapped in the instrument imprecision — the hierarchical
    /// counterpart of [`crate::predict::measure_all`].
    ///
    /// # Errors
    ///
    /// Propagates replica solver failures.
    pub fn readings(&self, board: &Netlist, imprecision_volts: f64) -> Result<Vec<FuzzyInterval>> {
        let (replica, taps) = self.backbone_replica(board);
        let op = solve_dc(&replica)?;
        let wrap = |v: f64| {
            FuzzyInterval::crisp(v)
                .widened(imprecision_volts)
                .expect("non-negative imprecision")
        };
        let mut out: Vec<FuzzyInterval> = taps.iter().map(|&t| wrap(op.voltage(t))).collect();
        for (blk, &tap) in taps.iter().enumerate() {
            out.push(wrap(op.voltage(tap) * self.block_transfer(board, blk)));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{inject_faults, Fault};

    #[test]
    fn spec_counts_components() {
        let spec = HierarchySpec::large(1);
        assert_eq!(spec.component_count(), 5185);
        let h = hierarchy(HierarchySpec::small(7));
        assert_eq!(h.netlist.component_count(), h.spec.component_count());
        assert_eq!(h.test_points.len(), 2 * h.spec.backbone_sections);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = hierarchy(HierarchySpec::small(42));
        let b = hierarchy(HierarchySpec::small(42));
        assert_eq!(format!("{}", a.netlist), format!("{}", b.netlist));
        let c = hierarchy(HierarchySpec::small(43));
        assert_ne!(format!("{}", a.netlist), format!("{}", c.netlist));
    }

    #[test]
    fn compositional_readings_match_the_full_solve() {
        // Small enough that the dense solve of the full board is cheap:
        // the replica + closed-form path must agree with it exactly.
        let h = hierarchy(HierarchySpec::small(5));
        let full = solve_dc(&h.netlist).unwrap();
        let readings = h.readings(&h.netlist, 0.0).unwrap();
        for (k, &tap) in h.taps.iter().enumerate() {
            assert!(
                (readings[k].core_midpoint() - full.voltage(tap)).abs() < 1e-5,
                "tap {k}"
            );
        }
        for (blk, &out) in h.block_outs.iter().enumerate() {
            let idx = h.taps.len() + blk;
            assert!(
                (readings[idx].core_midpoint() - full.voltage(out)).abs() < 1e-5,
                "block {blk}"
            );
        }
    }

    #[test]
    fn compositional_readings_match_under_fault() {
        let h = hierarchy(HierarchySpec::small(9));
        let faulted = inject_faults(
            &h.netlist,
            &[
                (h.backbone_shunt[1], Fault::ParamFactor(1.5)),
                (h.blocks[2][2], Fault::ParamFactor(1.7)),
            ],
        )
        .unwrap();
        let full = solve_dc(&faulted).unwrap();
        let readings = h.readings(&faulted, 0.0).unwrap();
        for (blk, &out) in h.block_outs.iter().enumerate() {
            let idx = h.taps.len() + blk;
            assert!(
                (readings[idx].core_midpoint() - full.voltage(out)).abs() < 1e-5,
                "block {blk} under fault"
            );
        }
    }

    #[test]
    fn predictions_contain_healthy_readings() {
        let h = hierarchy(HierarchySpec::small(3));
        let preds = h.predictions().unwrap();
        let readings = h.readings(&h.netlist, 0.0).unwrap();
        for (i, (p, r)) in preds.iter().zip(&readings).enumerate() {
            let v = r.core_midpoint();
            assert!(
                v >= p.support_lo() - 1e-9 && v <= p.support_hi() + 1e-9,
                "point {i}: healthy reading {v} escapes prediction {p}"
            );
        }
    }

    #[test]
    fn region_maps_cover_every_component() {
        let h = hierarchy(HierarchySpec::small(11));
        let (sparse, ns) = h.sparse_regions();
        let (dense, nd) = h.dense_regions();
        assert_eq!(sparse.len(), h.netlist.component_count());
        assert_eq!(dense.len(), h.netlist.component_count());
        assert_eq!(ns, h.spec.backbone_sections + 1);
        assert_eq!(nd, h.spec.backbone_sections);
        assert!(sparse.iter().all(|&r| (r as usize) < ns));
        assert!(dense.iter().all(|&r| (r as usize) < nd));
        // Every block region of the sparse map is non-empty.
        for blk in 1..=h.spec.backbone_sections {
            assert!(sparse.iter().any(|&r| r as usize == blk));
        }
    }
}
