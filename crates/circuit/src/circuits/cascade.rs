use super::builder::ChainBuilder;
use crate::netlist::{CompId, Net, Netlist};
use crate::predict::TestPoint;

/// A generated N-stage gain cascade used by the scaling experiments
/// (E5/E6): `vin → amp_1 → s1 → amp_2 → … → sN`, every stage with the
/// same gain and tolerance. The candidate space and the propagated
/// tolerance windows grow with N — the "explosion" the paper's graded
/// nogoods are designed to curb.
#[derive(Debug, Clone)]
pub struct Cascade {
    /// The netlist (driven by a 1 V source).
    pub netlist: Netlist,
    /// Input net.
    pub vin: Net,
    /// Stage output nets `s1 … sN`.
    pub stages: Vec<Net>,
    /// Stage amplifiers `amp_1 … amp_N`.
    pub amps: Vec<CompId>,
    /// A test point per stage output; the dependency cone of stage `k` is
    /// `amp_1 … amp_k`.
    pub test_points: Vec<TestPoint>,
}

/// Builds an `n`-stage cascade (`n ≥ 1`) with the given per-stage gain
/// and relative tolerance.
///
/// # Panics
///
/// Panics if `n == 0` or the gain/tolerance are invalid for the netlist
/// builder.
#[must_use]
pub fn cascade(n: usize, gain: f64, tolerance: f64) -> Cascade {
    assert!(n >= 1, "a cascade needs at least one stage");
    let mut b = ChainBuilder::driven(1.0);
    let vin = b.vin();
    let mut stages = Vec::with_capacity(n);
    let mut amps = Vec::with_capacity(n);
    let mut test_points = Vec::with_capacity(n);
    for k in 1..=n {
        let out = b.net(format!("s{k}"));
        let amp = b.stage_gain(format!("amp_{k}"), out, gain, tolerance);
        amps.push(amp);
        stages.push(out);
        test_points.push(TestPoint::new(out, format!("V{k}"), amps.clone()));
    }
    Cascade {
        netlist: b.finish(),
        vin,
        stages,
        amps,
        test_points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::solve_dc;

    #[test]
    fn nominal_cascade_multiplies_gains() {
        let c = cascade(4, 2.0, 0.05);
        let op = solve_dc(&c.netlist).unwrap();
        assert!((op.voltage(c.stages[0]) - 2.0).abs() < 1e-9);
        assert!((op.voltage(c.stages[3]) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn dependency_cones_grow() {
        let c = cascade(5, 1.5, 0.02);
        for (k, tp) in c.test_points.iter().enumerate() {
            assert_eq!(tp.support.len(), k + 1);
        }
        assert_eq!(c.amps.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_panics() {
        let _ = cascade(0, 2.0, 0.05);
    }
}
