//! Ready-made builders for every circuit the paper uses, plus generated
//! families for scaling experiments.
//!
//! * [`amp_branch`] — the Fig. 2 amplifier branch (gains 1/2/3, ±0.05)
//!   used for the crisp-vs-fuzzy propagation comparison (E1) and the §4.2
//!   fault-masking scenario (E2);
//! * [`diode_net`] — the Fig. 5 diode + two resistors network with the
//!   fuzzy `Id ≤ 100 µA` spec (E3);
//! * [`three_stage`] — the Fig. 6 three-stage transistor amplifier, the
//!   paper's main experimental vehicle (E4, E5);
//! * [`cascade`] — N-stage gain cascades for the explosion/scaling
//!   experiments (E5, E6);
//! * [`bandpass`] — an RC band-pass chain for the dynamic-mode (AC)
//!   experiments (E7);
//! * [`ladder`] — bilateral resistive ladders (simultaneous-constraint
//!   workloads for the scaling benches);
//! * [`hierarchy`] — seeded hierarchical boards (backbone + subcircuit
//!   blocks) for the region-sharded engine and its scaling gates.
//!
//! All generated families share the [`ChainBuilder`] plumbing for
//! source wiring, node naming and tolerance threading.

mod amp_branch;
mod bandpass;
mod builder;
mod cascade;
mod diode_net;
mod hierarchy;
mod ladder;
mod three_stage;

pub use amp_branch::{amp_branch, AmpBranch};
pub use bandpass::{bandpass, Bandpass};
pub use builder::ChainBuilder;
pub use cascade::{cascade, Cascade};
pub use diode_net::{diode_current_spec_micro_amps, diode_net, DiodeNet};
pub use hierarchy::{hierarchy, Hierarchy, HierarchySpec};
pub use ladder::{ladder, Ladder};
pub use three_stage::{three_stage, ThreeStage};
