use crate::constraint::{extract, ExtractOptions, Network, QuantityKind};
use crate::netlist::{CompId, Net, Netlist};
use flames_fuzzy::FuzzyInterval;

/// The paper's Fig. 5 network: `vin —r1— n1 —d1— n2 —r2— gnd`, with
/// `r1 = r2 = 10 kΩ`, a 0.2 V diode drop, and the diode's datasheet limit
/// "`Id ≤ 100 µA`" encoded as the fuzzy spec `[-1, 100, 0, 10]` µA.
///
/// The paper's measured scenario (`Vr1 = 1.05 V`, `Vr2 = 2 V`) makes both
/// resistor currents violate the spec — yielding nogood `{r1, d1}` with
/// degree 0.5 and nogood `{r2, d1}` with degree 1.
#[derive(Debug, Clone)]
pub struct DiodeNet {
    /// The netlist (driven by a source sized so the nominal currents sit
    /// inside the diode spec).
    pub netlist: Netlist,
    /// Source node.
    pub vin: Net,
    /// Node between r1 and the diode.
    pub n1: Net,
    /// Node between the diode and r2.
    pub n2: Net,
    /// First resistor.
    pub r1: CompId,
    /// The diode.
    pub d1: CompId,
    /// Second resistor.
    pub r2: CompId,
    /// The extracted constraint network with the diode-current spec
    /// installed (currents in µA for readability).
    pub network: Network,
}

/// The fuzzy Fig. 5 condition "`Id ≤ 100 µA`" in µA: `[-1, 100, 0, 10]`.
///
/// # Panics
///
/// Never panics (static construction).
#[must_use]
pub fn diode_current_spec_micro_amps() -> FuzzyInterval {
    FuzzyInterval::new(-1.0, 100.0, 0.0, 10.0).expect("static spec")
}

/// Builds the Fig. 5 diode network.
///
/// # Panics
///
/// Never panics for the fixed parameters used here.
#[must_use]
pub fn diode_net() -> DiodeNet {
    let mut nl = Netlist::new();
    let vin = nl.add_net("vin");
    let n1 = nl.add_net("n1");
    let n2 = nl.add_net("n2");
    // A healthy board: 1.7 V across 20 kΩ + 0.2 V drop → 75 µA, inside the
    // 100 µA spec.
    nl.add_voltage_source("Vin", vin, Net::GROUND, 1.7)
        .expect("fresh name");
    let r1 = nl
        .add_resistor("r1", vin, n1, 10_000.0, 0.05)
        .expect("fresh name");
    let d1 = nl.add_diode("d1", n1, n2, 0.2, 0.05).expect("fresh name");
    let r2 = nl
        .add_resistor("r2", n2, Net::GROUND, 10_000.0, 0.05)
        .expect("fresh name");

    let mut network = extract(&nl, ExtractOptions::default());
    let iq = network
        .find(QuantityKind::BranchCurrent(d1))
        .expect("diode current quantity");
    // The spec is stated in µA; the engine-facing condition is in amperes.
    network.add_spec(
        "Id<=100uA(d1)",
        iq,
        diode_current_spec_micro_amps().scaled(1e-6),
        vec![d1],
    );
    DiodeNet {
        netlist: nl,
        vin,
        n1,
        n2,
        r1,
        d1,
        r2,
        network,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::solve_dc;

    #[test]
    fn healthy_board_is_inside_spec() {
        let dn = diode_net();
        let op = solve_dc(&dn.netlist).unwrap();
        let i = match op.device(dn.d1) {
            crate::solve::DeviceSolution::Diode { amps, .. } => amps,
            _ => panic!("diode expected"),
        };
        let micro = i * 1e6;
        assert!((micro - 75.0).abs() < 1.0);
        assert_eq!(diode_current_spec_micro_amps().membership(micro), 1.0);
    }

    #[test]
    fn spec_grades_the_paper_measurements() {
        // Vr1 = 1.05 V → Ir1 = 105 µA → degree 0.5;
        // Vr2 = 2 V → Ir2 = 200 µA → degree 0.
        let spec = diode_current_spec_micro_amps();
        assert_eq!(spec.membership(105.0), 0.5);
        assert_eq!(spec.membership(200.0), 0.0);
    }

    #[test]
    fn network_has_spec_installed() {
        let dn = diode_net();
        assert_eq!(dn.network.specs().len(), 1);
        let spec = &dn.network.specs()[0];
        assert_eq!(spec.support, vec![dn.d1]);
        // Condition in amperes.
        assert!((spec.condition.membership(105e-6) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn shorted_r2_violates_spec() {
        use crate::fault::{inject_faults, Fault};
        let dn = diode_net();
        let bad = inject_faults(&dn.netlist, &[(dn.r2, Fault::Short)]).unwrap();
        let op = solve_dc(&bad).unwrap();
        let i = match op.device(dn.d1) {
            crate::solve::DeviceSolution::Diode { amps, .. } => amps,
            _ => panic!("diode expected"),
        };
        // 1.5 V across 10 kΩ → 150 µA: clearly outside the spec.
        assert!(i * 1e6 > 140.0);
        assert_eq!(dn.network.specs()[0].condition.membership(i), 0.0);
    }
}
