use crate::netlist::{CompId, Net, Netlist};
use crate::predict::TestPoint;

/// The paper's Fig. 2 circuit: an input node A driving amplifier `amp1`
/// (gain 1) into node B, which fans out into `amp2` (gain 2, node C) and
/// `amp3` (gain 3, node D). All gains carry an absolute ±0.05 spread.
#[derive(Debug, Clone)]
pub struct AmpBranch {
    /// The netlist (includes a 3 V source at A).
    pub netlist: Netlist,
    /// Input node A.
    pub a: Net,
    /// Intermediate node B.
    pub b: Net,
    /// Output node C (= 2·B).
    pub c: Net,
    /// Output node D (= 3·B).
    pub d: Net,
    /// First amplifier.
    pub amp1: CompId,
    /// Second amplifier.
    pub amp2: CompId,
    /// Third amplifier.
    pub amp3: CompId,
    /// Test points B, C, D with their dependency cones.
    pub test_points: Vec<TestPoint>,
}

/// Builds the Fig. 2 amplifier branch.
///
/// # Panics
///
/// Never panics for the fixed parameters used here.
#[must_use]
pub fn amp_branch() -> AmpBranch {
    let mut nl = Netlist::new();
    let a = nl.add_net("A");
    let b = nl.add_net("B");
    let c = nl.add_net("C");
    let d = nl.add_net("D");
    nl.add_voltage_source("Va", a, Net::GROUND, 3.0)
        .expect("fresh name");
    // Tolerances are relative; the paper's spreads are an absolute 0.05,
    // so each gain gets 0.05/|gain|.
    let amp1 = nl.add_gain("amp1", a, b, 1.0, 0.05).expect("fresh name");
    let amp2 = nl.add_gain("amp2", b, c, 2.0, 0.025).expect("fresh name");
    let amp3 = nl
        .add_gain("amp3", b, d, 3.0, 0.05 / 3.0)
        .expect("fresh name");
    let test_points = vec![
        TestPoint::new(b, "Vb", vec![amp1]),
        TestPoint::new(c, "Vc", vec![amp1, amp2]),
        TestPoint::new(d, "Vd", vec![amp1, amp3]),
    ];
    AmpBranch {
        netlist: nl,
        a,
        b,
        c,
        d,
        amp1,
        amp2,
        amp3,
        test_points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::solve_dc;

    #[test]
    fn nominal_voltages_match_fig2() {
        let ab = amp_branch();
        let op = solve_dc(&ab.netlist).unwrap();
        assert!((op.voltage(ab.a) - 3.0).abs() < 1e-9);
        assert!((op.voltage(ab.b) - 3.0).abs() < 1e-9);
        assert!((op.voltage(ab.c) - 6.0).abs() < 1e-9);
        assert!((op.voltage(ab.d) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn gain_tolerances_are_absolute_0_05() {
        let ab = amp_branch();
        for (id, abs) in [(ab.amp1, 1.0), (ab.amp2, 2.0), (ab.amp3, 3.0)] {
            let comp = ab.netlist.component(id);
            let spread = comp.tolerance() * abs;
            assert!((spread - 0.05).abs() < 1e-9, "{}", comp.name());
        }
    }

    #[test]
    fn faulty_amp2_matches_sec42_scenario() {
        use crate::fault::{inject_faults, Fault};
        let ab = amp_branch();
        let bad = inject_faults(&ab.netlist, &[(ab.amp2, Fault::Param(1.8))]).unwrap();
        let op = solve_dc(&bad).unwrap();
        assert!((op.voltage(ab.c) - 5.4).abs() < 1e-9); // 3 × 1.8
                                                        // Paper measures Vc = 5.6 with Va slightly high; with Va = 3.1111:
        let va = bad.component_by_name("Va").unwrap();
        let nl2 = inject_faults(&bad, &[(va, Fault::Param(5.6 / 1.8))]).unwrap();
        let op = solve_dc(&nl2).unwrap();
        assert!((op.voltage(ab.c) - 5.6).abs() < 1e-9);
    }

    #[test]
    fn test_points_cover_outputs() {
        let ab = amp_branch();
        assert_eq!(ab.test_points.len(), 3);
        assert_eq!(ab.test_points[0].support, vec![ab.amp1]);
        assert!(ab.test_points[1].support.contains(&ab.amp2));
        assert!(ab.test_points[2].support.contains(&ab.amp3));
    }
}
