use super::builder::ChainBuilder;
use crate::netlist::{CompId, Net, Netlist};
use crate::predict::TestPoint;

/// A resistive ladder: `vin —Rs1— n1 —Rs2— n2 — … — nN`, with a shunt
/// resistor `Rp_k` from every internal node to ground.
///
/// Unlike the gain [`crate::circuits::cascade`], the ladder is *bilateral*:
/// every node couples to both neighbours, so conflicts localize through
/// genuinely simultaneous constraints (divider chains) rather than
/// directed stages — a complementary workload for the scaling benches.
#[derive(Debug, Clone)]
pub struct Ladder {
    /// The netlist (driven by a 10 V source).
    pub netlist: Netlist,
    /// Input net.
    pub vin: Net,
    /// Internal nodes `n1 … nN`.
    pub nodes: Vec<Net>,
    /// Series resistors (`Rs1 … RsN`, vin→n1→…).
    pub series: Vec<CompId>,
    /// Shunt resistors (`Rp1 … RpN`, node→gnd).
    pub shunt: Vec<CompId>,
    /// A test point at every internal node; the cone of node `k` is all
    /// resistors up to and including section `k` (its upstream divider).
    pub test_points: Vec<TestPoint>,
}

/// Builds an `n`-section ladder (`n ≥ 1`) with the given section
/// resistances and relative tolerance.
///
/// # Panics
///
/// Panics if `n == 0` or the resistances/tolerance are invalid for the
/// netlist builder.
#[must_use]
pub fn ladder(n: usize, series_ohms: f64, shunt_ohms: f64, tolerance: f64) -> Ladder {
    assert!(n >= 1, "a ladder needs at least one section");
    let mut b = ChainBuilder::driven(10.0);
    let vin = b.vin();
    let mut nodes = Vec::with_capacity(n);
    let mut series = Vec::with_capacity(n);
    let mut shunt = Vec::with_capacity(n);
    let mut test_points = Vec::with_capacity(n);
    let mut cone: Vec<CompId> = Vec::new();
    for k in 1..=n {
        let node = b.net(format!("n{k}"));
        let rs = b.series_resistor(format!("Rs{k}"), node, series_ohms, tolerance);
        let rp = b.shunt_resistor(format!("Rp{k}"), node, shunt_ohms, tolerance);
        series.push(rs);
        shunt.push(rp);
        cone.push(rs);
        cone.push(rp);
        nodes.push(node);
        test_points.push(TestPoint::new(node, format!("V{k}"), cone.clone()));
    }
    Ladder {
        netlist: b.finish(),
        vin,
        nodes,
        series,
        shunt,
        test_points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{inject_faults, Fault};
    use crate::predict::measure_all;
    use crate::solve::solve_dc;

    #[test]
    fn single_section_is_a_divider() {
        let l = ladder(1, 1000.0, 1000.0, 0.0);
        let op = solve_dc(&l.netlist).unwrap();
        assert!((op.voltage(l.nodes[0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn voltages_decrease_along_the_ladder() {
        let l = ladder(6, 1000.0, 2200.0, 0.05);
        let op = solve_dc(&l.netlist).unwrap();
        let mut prev = 10.0;
        for &node in &l.nodes {
            let v = op.voltage(node);
            assert!(v < prev, "ladder voltage must fall monotonically");
            assert!(v > 0.0);
            prev = v;
        }
        assert_eq!(l.test_points.len(), 6);
        assert_eq!(l.test_points[2].support.len(), 6); // 3 sections × 2
    }

    #[test]
    fn shorted_shunt_collapses_its_node() {
        let l = ladder(4, 1000.0, 2200.0, 0.05);
        let bad = inject_faults(&l.netlist, &[(l.shunt[1], Fault::Short)]).unwrap();
        let readings = measure_all(&bad, &l.nodes, 0.01).unwrap();
        assert!(readings[1].core_midpoint() < 0.01);
        // Downstream nodes collapse too (fed from a grounded node).
        assert!(readings[2].core_midpoint() < 0.01);
    }
}
