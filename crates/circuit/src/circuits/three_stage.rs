use crate::netlist::{CompId, Net, Netlist};
use crate::predict::TestPoint;

/// The paper's Fig. 6 three-stage amplifier (Vcc = 18 V, Vbe = 0.7 V,
/// β = 300/200/100), reconstructed as documented in `DESIGN.md`:
///
/// * **stage 1** — feedback-biased common emitter: `R1` (200 kΩ) from the
///   collector `V1` back to the base `N1`, `R3` (24 kΩ) from `N1` to
///   ground, `R2` (12 kΩ) collector load, `T1` (β = 300);
/// * **stage 2** — degenerated common emitter: base at `V1`, emitter `N2`
///   through `R5` (2.2 kΩ), collector `V2` through `R4` (3 kΩ),
///   `T2` (β = 200);
/// * **stage 3** — emitter follower: base at `V2`, output `Vs` through
///   `R6` (1.8 kΩ), `T3` (β = 100).
///
/// All transistors sit in the forward-active (linear) region — the
/// property the paper says its component values were chosen to ensure —
/// and the signal path is single: `N1 → V1 → V2 → Vs`.
#[derive(Debug, Clone)]
pub struct ThreeStage {
    /// The netlist.
    pub netlist: Netlist,
    /// Supply net.
    pub vcc: Net,
    /// Base node of stage 1 (the paper's interconnect-open fault site).
    pub n1: Net,
    /// Stage-1 output (collector of T1).
    pub v1: Net,
    /// Emitter node of stage 2.
    pub n2: Net,
    /// Stage-2 output (collector of T2).
    pub v2: Net,
    /// Circuit output (emitter of T3).
    pub vs: Net,
    /// Bias/feedback resistor R1 (200 kΩ).
    pub r1: CompId,
    /// Stage-1 collector load R2 (12 kΩ).
    pub r2: CompId,
    /// Base-ground resistor R3 (24 kΩ).
    pub r3: CompId,
    /// Stage-2 collector load R4 (3 kΩ).
    pub r4: CompId,
    /// Stage-2 emitter resistor R5 (2.2 kΩ).
    pub r5: CompId,
    /// Output emitter resistor R6 (1.8 kΩ).
    pub r6: CompId,
    /// Stage-1 transistor (β = 300).
    pub t1: CompId,
    /// Stage-2 transistor (β = 200).
    pub t2: CompId,
    /// Stage-3 transistor (β = 100).
    pub t3: CompId,
    /// Supply source.
    pub supply: CompId,
    /// Test points V1, V2, Vs with their upstream dependency cones
    /// (Fig. 7's per-point suspect sets).
    pub test_points: Vec<TestPoint>,
}

impl ThreeStage {
    /// Components of stage 1 — the paper's `{R1, R2, R3, T1}`.
    #[must_use]
    pub fn stage1(&self) -> Vec<CompId> {
        vec![self.r1, self.r2, self.r3, self.t1]
    }

    /// Components of stage 2 — `{R4, R5, T2}`.
    #[must_use]
    pub fn stage2(&self) -> Vec<CompId> {
        vec![self.r4, self.r5, self.t2]
    }

    /// Components of stage 3 — `{R6, T3}`.
    #[must_use]
    pub fn stage3(&self) -> Vec<CompId> {
        vec![self.r6, self.t3]
    }
}

/// Builds the Fig. 6 amplifier with the given relative component
/// tolerance (the paper works at 5 %: pass `0.05`).
///
/// # Panics
///
/// Panics if `tolerance` is outside `[0, 1)` (a programming error in the
/// caller; the netlist builder validates it).
#[must_use]
pub fn three_stage(tolerance: f64) -> ThreeStage {
    let mut nl = Netlist::new();
    let vcc = nl.add_net("vcc");
    let n1 = nl.add_net("N1");
    let v1 = nl.add_net("V1");
    let n2 = nl.add_net("N2");
    let v2 = nl.add_net("V2");
    let vs = nl.add_net("Vs");
    let supply = nl
        .add_voltage_source("Vcc", vcc, Net::GROUND, 18.0)
        .expect("fresh name");
    let r1 = nl
        .add_resistor("R1", v1, n1, 200e3, tolerance)
        .expect("fresh name");
    let r2 = nl
        .add_resistor("R2", vcc, v1, 12e3, tolerance)
        .expect("fresh name");
    let r3 = nl
        .add_resistor("R3", n1, Net::GROUND, 24e3, tolerance)
        .expect("fresh name");
    let t1 = nl
        .add_npn("T1", v1, n1, Net::GROUND, 300.0, 0.7, tolerance)
        .expect("fresh name");
    let r4 = nl
        .add_resistor("R4", vcc, v2, 3e3, tolerance)
        .expect("fresh name");
    let r5 = nl
        .add_resistor("R5", n2, Net::GROUND, 2.2e3, tolerance)
        .expect("fresh name");
    let t2 = nl
        .add_npn("T2", v2, v1, n2, 200.0, 0.7, tolerance)
        .expect("fresh name");
    let r6 = nl
        .add_resistor("R6", vs, Net::GROUND, 1.8e3, tolerance)
        .expect("fresh name");
    let t3 = nl
        .add_npn("T3", vcc, v2, vs, 100.0, 0.7, tolerance)
        .expect("fresh name");

    let stage1 = vec![r1, r2, r3, t1];
    let mut stage12 = stage1.clone();
    stage12.extend([r4, r5, t2]);
    let mut all = stage12.clone();
    all.extend([r6, t3]);
    let test_points = vec![
        TestPoint::new(v1, "V1", stage1),
        TestPoint::new(v2, "V2", stage12),
        TestPoint::new(vs, "Vs", all),
    ];

    ThreeStage {
        netlist: nl,
        vcc,
        n1,
        v1,
        n2,
        v2,
        vs,
        r1,
        r2,
        r3,
        r4,
        r5,
        r6,
        t1,
        t2,
        t3,
        supply,
        test_points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{inject_faults, open_connection, Fault};
    use crate::solve::{solve_dc, BjtRegion, DeviceSolution};

    fn region(op: &crate::solve::OperatingPoint, t: CompId) -> BjtRegion {
        match op.device(t) {
            DeviceSolution::Npn { region, .. } => region,
            _ => panic!("expected a transistor"),
        }
    }

    #[test]
    fn healthy_board_all_transistors_linear() {
        let ts = three_stage(0.05);
        let op = solve_dc(&ts.netlist).unwrap();
        assert!(
            op.all_bjts_active(),
            "paper: values ensure the linear region"
        );
        // Hand-computed operating point (see DESIGN.md §2).
        assert!((op.voltage(ts.n1) - 0.7).abs() < 1e-6);
        assert!((op.voltage(ts.v1) - 7.11).abs() < 0.05);
        assert!((op.voltage(ts.n2) - 6.41).abs() < 0.05);
        assert!((op.voltage(ts.v2) - 9.2).abs() < 0.2);
        assert!((op.voltage(ts.vs) - 8.5).abs() < 0.2);
    }

    #[test]
    fn short_r2_drives_stage2_out_of_linearity() {
        let ts = three_stage(0.05);
        let bad = inject_faults(&ts.netlist, &[(ts.r2, Fault::Short)]).unwrap();
        let op = solve_dc(&bad).unwrap();
        // V1 pinned at the rail: a hard, unmistakable defect.
        assert!((op.voltage(ts.v1) - 18.0).abs() < 0.01);
        assert_ne!(region(&op, ts.t2), BjtRegion::Active);
    }

    #[test]
    fn slightly_high_r2_moves_outputs_slightly() {
        let ts = three_stage(0.05);
        let healthy = solve_dc(&ts.netlist).unwrap();
        let bad = inject_faults(&ts.netlist, &[(ts.r2, Fault::Param(12_180.0))]).unwrap();
        let op = solve_dc(&bad).unwrap();
        let dv1 = (op.voltage(ts.v1) - healthy.voltage(ts.v1)).abs();
        assert!(dv1 > 1e-3, "the soft fault must be visible");
        assert!(dv1 < 0.5, "but small — this is the Dc test case");
        assert!(op.all_bjts_active());
    }

    #[test]
    fn slightly_low_beta2_is_a_soft_fault() {
        let ts = three_stage(0.05);
        let healthy = solve_dc(&ts.netlist).unwrap();
        let bad = inject_faults(&ts.netlist, &[(ts.t2, Fault::Param(194.0))]).unwrap();
        let op = solve_dc(&bad).unwrap();
        let dv2 = (op.voltage(ts.v2) - healthy.voltage(ts.v2)).abs();
        assert!(dv2 > 1e-5);
        assert!(dv2 < 0.5);
        // V1 barely moves: the defect localizes to stage 2.
        assert!((op.voltage(ts.v1) - healthy.voltage(ts.v1)).abs() < 0.05);
    }

    #[test]
    fn open_r3_pulls_v1_low() {
        let ts = three_stage(0.05);
        let bad = inject_faults(&ts.netlist, &[(ts.r3, Fault::Open)]).unwrap();
        let op = solve_dc(&bad).unwrap();
        // Hand analysis: V1 ≈ 1.6 V — far below nominal (deviation LOW,
        // the paper's Dc(V1) = −1 signature).
        assert!(op.voltage(ts.v1) < 2.5);
    }

    #[test]
    fn open_n1_connection_mimics_r3_high() {
        let ts = three_stage(0.05);
        let cut = open_connection(&ts.netlist, ts.r3, ts.n1).unwrap();
        let op = solve_dc(&cut).unwrap();
        // R3 detached behaves like R3 → ∞: same low-V1 signature.
        assert!(op.voltage(ts.v1) < 2.5);
    }

    #[test]
    fn stages_partition_components() {
        let ts = three_stage(0.05);
        let mut all = ts.stage1();
        all.extend(ts.stage2());
        all.extend(ts.stage3());
        assert_eq!(all.len(), 9);
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 9);
        assert_eq!(ts.test_points.len(), 3);
        assert_eq!(ts.test_points[0].support.len(), 4);
        assert_eq!(ts.test_points[1].support.len(), 7);
        assert_eq!(ts.test_points[2].support.len(), 9);
    }
}
