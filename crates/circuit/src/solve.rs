//! DC operating-point solver (modified nodal analysis).
//!
//! This is the "bench instrument" of the reproduction: the paper measured
//! real boards on a Sun workstation; we solve the (possibly faulted)
//! netlist and hand the node voltages to the diagnosis engine as
//! *measurements*. The solver is deliberately independent from the
//! constraint models used for diagnosis — the engine never sees netlist
//! internals, only test-point readings, exactly like FLAMES.
//!
//! Devices are piecewise linear: diodes are constant-drop/off, transistors
//! follow the paper's linear-region model (`Vbe` fixed, `Ic = β·Ib`) with
//! cutoff and saturation states. States are chosen by fixed-point
//! iteration over the linear MNA solve.

use crate::error::CircuitError;
use crate::netlist::{CompId, ComponentKind, Net, Netlist};
use crate::Result;

/// Conductance tied from every net to ground to keep floating nets
/// solvable (standard SPICE `GMIN`).
const GMIN: f64 = 1e-12;

/// Collector-emitter voltage at the saturation boundary of the
/// piecewise-linear BJT model.
const VCE_SAT: f64 = 0.2;

/// Iteration budget for the device-state fixed point.
const MAX_STATE_ITERS: usize = 64;

/// Operating region of a bipolar transistor in the solved circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BjtRegion {
    /// Forward-active: `Vbe` clamped, `Ic = β·Ib` (the paper's "linear
    /// region").
    Active,
    /// No conduction.
    Cutoff,
    /// `Vce` clamped at the saturation boundary.
    Saturated,
}

/// Conduction state of a diode in the solved circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiodeState {
    /// Conducting with the constant forward drop.
    On,
    /// Blocking (no current).
    Off,
}

/// Per-component solution details.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceSolution {
    /// Resistor: terminal current `a → b` in amperes.
    Resistor {
        /// Current from terminal `a` to terminal `b`.
        amps: f64,
    },
    /// Voltage source: current delivered from the positive terminal.
    VoltageSource {
        /// Branch current (plus → through source → minus).
        amps: f64,
    },
    /// Current source (echoes its setpoint).
    CurrentSource {
        /// Source current.
        amps: f64,
    },
    /// Diode with its conduction state and current (anode → cathode).
    Diode {
        /// Conduction state.
        state: DiodeState,
        /// Forward current in amperes.
        amps: f64,
    },
    /// Bipolar transistor with region and currents.
    Npn {
        /// Operating region.
        region: BjtRegion,
        /// Base current in amperes.
        ib: f64,
        /// Collector current in amperes.
        ic: f64,
    },
    /// Gain block: output source current.
    Gain {
        /// Current injected by the ideal output source.
        amps: f64,
    },
}

/// The solved DC operating point of a netlist.
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    voltages: Vec<f64>,
    devices: Vec<DeviceSolution>,
}

impl OperatingPoint {
    /// Voltage of a net relative to ground.
    ///
    /// # Panics
    ///
    /// Panics if the net does not belong to the solved netlist.
    #[must_use]
    pub fn voltage(&self, net: Net) -> f64 {
        self.voltages[net.index()]
    }

    /// Per-device solution details.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to the solved netlist.
    #[must_use]
    pub fn device(&self, id: CompId) -> DeviceSolution {
        self.devices[id.index()]
    }

    /// All node voltages indexed by net.
    #[must_use]
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// True when every transistor is forward-active — the condition the
    /// paper says its Fig. 6 component values were chosen to ensure.
    #[must_use]
    pub fn all_bjts_active(&self) -> bool {
        self.devices.iter().all(|d| {
            !matches!(
                d,
                DeviceSolution::Npn {
                    region: BjtRegion::Cutoff | BjtRegion::Saturated,
                    ..
                }
            )
        })
    }
}

/// Solves the DC operating point of `netlist`.
///
/// # Errors
///
/// * [`CircuitError::SingularSystem`] when the MNA matrix cannot be
///   factored (inconsistent ideal sources);
/// * [`CircuitError::NoConvergence`] when the diode/BJT state iteration
///   cycles without settling.
pub fn solve_dc(netlist: &Netlist) -> Result<OperatingPoint> {
    flames_obs::metrics().dc_solves.incr();
    let mut states = initial_states(netlist);
    let mut seen: Vec<Vec<u8>> = Vec::new();
    for _ in 0..MAX_STATE_ITERS {
        let solution = solve_linear(netlist, &states)?;
        let next = refine_states(netlist, &solution, &states);
        if next == states {
            return Ok(solution);
        }
        let encoded = encode(&next);
        if seen.contains(&encoded) {
            // A state cycle: accept the current solution as the best
            // piecewise-linear answer rather than oscillating forever.
            return Ok(solution);
        }
        seen.push(encoded);
        states = next;
    }
    Err(CircuitError::NoConvergence {
        iterations: MAX_STATE_ITERS,
    })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeviceState {
    None,
    Diode(DiodeState),
    Bjt(BjtRegion),
}

fn initial_states(netlist: &Netlist) -> Vec<DeviceState> {
    netlist
        .components()
        .map(|(_, c)| match *c.kind() {
            // A diode across a single net can never conduct its drop.
            ComponentKind::Diode { anode, cathode, .. } if anode == cathode => {
                DeviceState::Diode(DiodeState::Off)
            }
            ComponentKind::Diode { .. } => DeviceState::Diode(DiodeState::On),
            // Base tied to the emitter: the Vbe clamp is unsatisfiable,
            // the transistor is permanently cut off.
            ComponentKind::Npn { base, emitter, .. } if base == emitter => {
                DeviceState::Bjt(BjtRegion::Cutoff)
            }
            ComponentKind::Npn { .. } => DeviceState::Bjt(BjtRegion::Active),
            _ => DeviceState::None,
        })
        .collect()
}

fn encode(states: &[DeviceState]) -> Vec<u8> {
    states
        .iter()
        .map(|s| match s {
            DeviceState::None => 0,
            DeviceState::Diode(DiodeState::On) => 1,
            DeviceState::Diode(DiodeState::Off) => 2,
            DeviceState::Bjt(BjtRegion::Active) => 3,
            DeviceState::Bjt(BjtRegion::Cutoff) => 4,
            DeviceState::Bjt(BjtRegion::Saturated) => 5,
        })
        .collect()
}

/// One linear MNA solve for fixed device states.
fn solve_linear(netlist: &Netlist, states: &[DeviceState]) -> Result<OperatingPoint> {
    // Unknowns: node voltages (ground folded out) + one branch current per
    // voltage-defined element.
    let n_nets = netlist.net_count();
    let mut branch_of: Vec<Option<usize>> = vec![None; netlist.component_count()];
    let mut n_branches = 0usize;
    for (id, comp) in netlist.components() {
        let needs_branch = match (comp.kind(), states[id.index()]) {
            (ComponentKind::VoltageSource { .. }, _) | (ComponentKind::Gain { .. }, _) => true,
            (ComponentKind::Diode { .. }, DeviceState::Diode(DiodeState::On)) => true,
            (ComponentKind::Npn { .. }, DeviceState::Bjt(BjtRegion::Active)) => true,
            // Saturated BJT: two branch currents (ib through the Vbe clamp
            // and ic through the Vce clamp) — allocate two slots.
            (ComponentKind::Npn { .. }, DeviceState::Bjt(BjtRegion::Saturated)) => {
                branch_of[id.index()] = Some(n_nets - 1 + n_branches);
                n_branches += 2;
                continue;
            }
            _ => false,
        };
        if needs_branch {
            branch_of[id.index()] = Some(n_nets - 1 + n_branches);
            n_branches += 1;
        }
    }
    let dim = n_nets - 1 + n_branches;
    let mut a = vec![0.0f64; dim * dim];
    let mut b = vec![0.0f64; dim];

    // Node voltage indices: net k (k >= 1) -> k - 1; ground -> None.
    let vid = |net: Net| -> Option<usize> {
        if net.is_ground() {
            None
        } else {
            Some(net.index() - 1)
        }
    };
    let stamp = |m: &mut Vec<f64>, r: Option<usize>, c: Option<usize>, val: f64| {
        if let (Some(r), Some(c)) = (r, c) {
            m[r * dim + c] += val;
        }
    };

    // GMIN to ground on every non-ground net.
    for net in netlist.nets() {
        if let Some(i) = vid(net) {
            a[i * dim + i] += GMIN;
        }
    }

    for (id, comp) in netlist.components() {
        let br = branch_of[id.index()];
        match *comp.kind() {
            ComponentKind::Resistor { a: na, b: nb, ohms } => {
                let g = 1.0 / ohms;
                let (ia, ib_) = (vid(na), vid(nb));
                stamp(&mut a, ia, ia, g);
                stamp(&mut a, ib_, ib_, g);
                stamp(&mut a, ia, ib_, -g);
                stamp(&mut a, ib_, ia, -g);
            }
            ComponentKind::Capacitor { .. } => {
                // Open at DC: no stamp.
            }
            ComponentKind::Inductor { a: na, b: nb, .. } => {
                // A short at DC (modelled as a milliohm bond).
                let g = 1.0 / crate::fault::SHORT_OHMS;
                let (ia, ib_) = (vid(na), vid(nb));
                stamp(&mut a, ia, ia, g);
                stamp(&mut a, ib_, ib_, g);
                stamp(&mut a, ia, ib_, -g);
                stamp(&mut a, ib_, ia, -g);
            }
            ComponentKind::CurrentSource { from, to, amps } => {
                if let Some(i) = vid(from) {
                    b[i] -= amps;
                }
                if let Some(i) = vid(to) {
                    b[i] += amps;
                }
            }
            ComponentKind::VoltageSource { plus, minus, volts } => {
                let k = br.expect("voltage source has a branch");
                let (ip, im) = (vid(plus), vid(minus));
                // KCL: branch current leaves plus, enters minus.
                stamp(&mut a, ip, Some(k), 1.0);
                stamp(&mut a, im, Some(k), -1.0);
                // Branch equation: V(plus) − V(minus) = volts.
                stamp(&mut a, Some(k), ip, 1.0);
                stamp(&mut a, Some(k), im, -1.0);
                b[k] = volts;
            }
            ComponentKind::Diode {
                anode,
                cathode,
                drop_volts,
            } => {
                if states[id.index()] == DeviceState::Diode(DiodeState::On) {
                    let k = br.expect("conducting diode has a branch");
                    let (ia, ik) = (vid(anode), vid(cathode));
                    stamp(&mut a, ia, Some(k), 1.0);
                    stamp(&mut a, ik, Some(k), -1.0);
                    stamp(&mut a, Some(k), ia, 1.0);
                    stamp(&mut a, Some(k), ik, -1.0);
                    b[k] = drop_volts;
                }
            }
            ComponentKind::Npn {
                collector,
                base,
                emitter,
                beta,
                ..
            } => {
                match states[id.index()] {
                    DeviceState::Bjt(BjtRegion::Active) => {
                        let k = br.expect("active BJT has a branch");
                        let vbe = match *comp.kind() {
                            ComponentKind::Npn { vbe, .. } => vbe,
                            _ => unreachable!(),
                        };
                        let (ic_, ib_, ie_) = (vid(collector), vid(base), vid(emitter));
                        // Branch variable: Ib (base -> emitter).
                        stamp(&mut a, ib_, Some(k), 1.0);
                        stamp(&mut a, ie_, Some(k), -(1.0 + beta));
                        stamp(&mut a, ic_, Some(k), beta);
                        // Branch equation: V(base) − V(emitter) = Vbe.
                        stamp(&mut a, Some(k), ib_, 1.0);
                        stamp(&mut a, Some(k), ie_, -1.0);
                        b[k] = vbe;
                    }
                    DeviceState::Bjt(BjtRegion::Saturated) => {
                        let k = br.expect("saturated BJT has branches");
                        let vbe = match *comp.kind() {
                            ComponentKind::Npn { vbe, .. } => vbe,
                            _ => unreachable!(),
                        };
                        let (ic_, ib_, ie_) = (vid(collector), vid(base), vid(emitter));
                        // Branch k: Ib via Vbe clamp; branch k+1: Ic via Vce clamp.
                        stamp(&mut a, ib_, Some(k), 1.0);
                        stamp(&mut a, ie_, Some(k), -1.0);
                        stamp(&mut a, Some(k), ib_, 1.0);
                        stamp(&mut a, Some(k), ie_, -1.0);
                        b[k] = vbe;
                        stamp(&mut a, ic_, Some(k + 1), 1.0);
                        stamp(&mut a, ie_, Some(k + 1), -1.0);
                        stamp(&mut a, Some(k + 1), ic_, 1.0);
                        stamp(&mut a, Some(k + 1), ie_, -1.0);
                        b[k + 1] = VCE_SAT;
                    }
                    _ => {} // cutoff: open
                }
            }
            ComponentKind::Gain {
                input,
                output,
                gain,
            } => {
                let k = br.expect("gain block has a branch");
                let (ii, io) = (vid(input), vid(output));
                // Output source injects branch current at the output node.
                stamp(&mut a, io, Some(k), 1.0);
                // Branch equation: V(out) − gain · V(in) = 0.
                stamp(&mut a, Some(k), io, 1.0);
                stamp(&mut a, Some(k), ii, -gain);
            }
        }
    }

    let x = gauss_solve(a, b, dim)?;

    // Decode voltages.
    let mut voltages = vec![0.0; n_nets];
    for net in netlist.nets() {
        if let Some(i) = vid(net) {
            voltages[net.index()] = x[i];
        }
    }
    // Decode per-device solutions.
    let mut devices = Vec::with_capacity(netlist.component_count());
    for (id, comp) in netlist.components() {
        let br = branch_of[id.index()];
        let dev = match *comp.kind() {
            ComponentKind::Resistor { a: na, b: nb, ohms } => DeviceSolution::Resistor {
                amps: (voltages[na.index()] - voltages[nb.index()]) / ohms,
            },
            ComponentKind::Capacitor { .. } => DeviceSolution::Resistor { amps: 0.0 },
            ComponentKind::Inductor { a: na, b: nb, .. } => DeviceSolution::Resistor {
                amps: (voltages[na.index()] - voltages[nb.index()]) / crate::fault::SHORT_OHMS,
            },
            ComponentKind::VoltageSource { .. } => DeviceSolution::VoltageSource {
                amps: x[br.expect("branch")],
            },
            ComponentKind::CurrentSource { amps, .. } => DeviceSolution::CurrentSource { amps },
            ComponentKind::Diode { .. } => match states[id.index()] {
                DeviceState::Diode(DiodeState::On) => DeviceSolution::Diode {
                    state: DiodeState::On,
                    amps: x[br.expect("branch")],
                },
                _ => DeviceSolution::Diode {
                    state: DiodeState::Off,
                    amps: 0.0,
                },
            },
            ComponentKind::Npn { beta, .. } => match states[id.index()] {
                DeviceState::Bjt(BjtRegion::Active) => {
                    let ib = x[br.expect("branch")];
                    DeviceSolution::Npn {
                        region: BjtRegion::Active,
                        ib,
                        ic: beta * ib,
                    }
                }
                DeviceState::Bjt(BjtRegion::Saturated) => {
                    let k = br.expect("branches");
                    DeviceSolution::Npn {
                        region: BjtRegion::Saturated,
                        ib: x[k],
                        ic: x[k + 1],
                    }
                }
                _ => DeviceSolution::Npn {
                    region: BjtRegion::Cutoff,
                    ib: 0.0,
                    ic: 0.0,
                },
            },
            ComponentKind::Gain { .. } => DeviceSolution::Gain {
                amps: x[br.expect("branch")],
            },
        };
        devices.push(dev);
    }
    Ok(OperatingPoint { voltages, devices })
}

/// Re-evaluates device states against a candidate solution.
fn refine_states(
    netlist: &Netlist,
    sol: &OperatingPoint,
    states: &[DeviceState],
) -> Vec<DeviceState> {
    let mut next = states.to_vec();
    for (id, comp) in netlist.components() {
        match *comp.kind() {
            ComponentKind::Diode {
                anode,
                cathode,
                drop_volts,
            } => {
                let state = match sol.device(id) {
                    DeviceSolution::Diode { state, amps } => match state {
                        DiodeState::On if amps < -1e-12 => DiodeState::Off,
                        DiodeState::Off
                            if sol.voltage(anode) - sol.voltage(cathode) > drop_volts + 1e-9 =>
                        {
                            DiodeState::On
                        }
                        s => s,
                    },
                    _ => DiodeState::Off,
                };
                next[id.index()] = DeviceState::Diode(state);
            }
            ComponentKind::Npn {
                collector,
                base,
                emitter,
                beta,
                vbe,
            } => {
                if let DeviceSolution::Npn { region, ib, ic } = sol.device(id) {
                    let vce = sol.voltage(collector) - sol.voltage(emitter);
                    let vbe_now = sol.voltage(base) - sol.voltage(emitter);
                    let region = match region {
                        BjtRegion::Active => {
                            if ib < -1e-12 {
                                BjtRegion::Cutoff
                            } else if vce < VCE_SAT - 1e-9 {
                                BjtRegion::Saturated
                            } else {
                                BjtRegion::Active
                            }
                        }
                        BjtRegion::Cutoff => {
                            if vbe_now > vbe + 1e-9 {
                                BjtRegion::Active
                            } else {
                                BjtRegion::Cutoff
                            }
                        }
                        BjtRegion::Saturated => {
                            if ib < -1e-12 {
                                BjtRegion::Cutoff
                            } else if ic > beta * ib + 1e-12 {
                                BjtRegion::Active
                            } else {
                                BjtRegion::Saturated
                            }
                        }
                    };
                    next[id.index()] = DeviceState::Bjt(region);
                }
            }
            _ => {}
        }
    }
    next
}

/// Dense Gaussian elimination with partial pivoting.
fn gauss_solve(mut a: Vec<f64>, mut b: Vec<f64>, n: usize) -> Result<Vec<f64>> {
    for col in 0..n {
        // Pivot.
        let mut best = col;
        let mut best_val = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > best_val {
                best = row;
                best_val = v;
            }
        }
        if best_val < 1e-300 {
            return Err(CircuitError::SingularSystem);
        }
        if best != col {
            for k in 0..n {
                a.swap(col * n + k, best * n + k);
            }
            b.swap(col, best);
        }
        // Eliminate below.
        let pivot = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{inject_faults, open_connection, Fault};

    fn assert_close(x: f64, y: f64, tol: f64) {
        assert!((x - y).abs() <= tol, "{x} != {y} (tol {tol})");
    }

    #[test]
    fn voltage_divider() {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        nl.add_resistor("R1", vin, mid, 1e3, 0.0).unwrap();
        nl.add_resistor("R2", mid, Net::GROUND, 3e3, 0.0).unwrap();
        let op = solve_dc(&nl).unwrap();
        assert_close(op.voltage(mid), 7.5, 1e-6);
        assert_close(op.voltage(vin), 10.0, 1e-12);
        let r1 = nl.component_by_name("R1").unwrap();
        match op.device(r1) {
            DeviceSolution::Resistor { amps } => assert_close(amps, 2.5e-3, 1e-9),
            _ => panic!("wrong device solution"),
        }
    }

    #[test]
    fn current_source_into_resistor() {
        let mut nl = Netlist::new();
        let n = nl.add_net("n");
        nl.add_current_source("I", Net::GROUND, n, 1e-3).unwrap();
        nl.add_resistor("R", n, Net::GROUND, 2e3, 0.0).unwrap();
        let op = solve_dc(&nl).unwrap();
        assert_close(op.voltage(n), 2.0, 1e-6);
    }

    #[test]
    fn conducting_diode_drops_constant() {
        // 5 V -> R 1k -> diode(0.2) -> gnd: I = (5 − 0.2)/1k.
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let a = nl.add_net("a");
        nl.add_voltage_source("V", vin, Net::GROUND, 5.0).unwrap();
        nl.add_resistor("R", vin, a, 1e3, 0.0).unwrap();
        let d = nl.add_diode("D", a, Net::GROUND, 0.2, 0.0).unwrap();
        let op = solve_dc(&nl).unwrap();
        assert_close(op.voltage(a), 0.2, 1e-6);
        match op.device(d) {
            DeviceSolution::Diode { state, amps } => {
                assert_eq!(state, DiodeState::On);
                assert_close(amps, 4.8e-3, 1e-6);
            }
            _ => panic!("wrong device solution"),
        }
    }

    #[test]
    fn reverse_biased_diode_blocks() {
        // −5 V at the anode side: the diode must switch off.
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let a = nl.add_net("a");
        nl.add_voltage_source("V", vin, Net::GROUND, -5.0).unwrap();
        nl.add_resistor("R", vin, a, 1e3, 0.0).unwrap();
        let d = nl.add_diode("D", a, Net::GROUND, 0.2, 0.0).unwrap();
        let op = solve_dc(&nl).unwrap();
        match op.device(d) {
            DeviceSolution::Diode { state, amps } => {
                assert_eq!(state, DiodeState::Off);
                assert_eq!(amps, 0.0);
            }
            _ => panic!("wrong device solution"),
        }
        // Node floats to the source level through R (no current).
        assert_close(op.voltage(a), -5.0, 1e-6);
    }

    #[test]
    fn gain_blocks_chain_like_fig2() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let c = nl.add_net("c");
        let d = nl.add_net("d");
        nl.add_voltage_source("Va", a, Net::GROUND, 3.0).unwrap();
        nl.add_gain("amp1", a, b, 1.0, 0.05).unwrap();
        nl.add_gain("amp2", b, c, 2.0, 0.05).unwrap();
        nl.add_gain("amp3", b, d, 3.0, 0.05).unwrap();
        let op = solve_dc(&nl).unwrap();
        assert_close(op.voltage(b), 3.0, 1e-6);
        assert_close(op.voltage(c), 6.0, 1e-6);
        assert_close(op.voltage(d), 9.0, 1e-6);
    }

    #[test]
    fn common_emitter_stage_is_active() {
        // Feedback-biased CE stage: Vcc 18, R1 200k V1->base, R3 24k
        // base->gnd, R2 12k Vcc->V1, beta 300.
        let mut nl = Netlist::new();
        let vcc = nl.add_net("vcc");
        let n1 = nl.add_net("n1");
        let v1 = nl.add_net("v1");
        nl.add_voltage_source("Vcc", vcc, Net::GROUND, 18.0)
            .unwrap();
        nl.add_resistor("R1", v1, n1, 200e3, 0.05).unwrap();
        nl.add_resistor("R3", n1, Net::GROUND, 24e3, 0.05).unwrap();
        nl.add_resistor("R2", vcc, v1, 12e3, 0.05).unwrap();
        let t = nl
            .add_npn("T1", v1, n1, Net::GROUND, 300.0, 0.7, 0.05)
            .unwrap();
        let op = solve_dc(&nl).unwrap();
        assert_close(op.voltage(n1), 0.7, 1e-6);
        // Hand analysis (see DESIGN.md): V1 ≈ 7.12 V, Ib ≈ 2.92 µA.
        assert_close(op.voltage(v1), 7.12, 0.02);
        match op.device(t) {
            DeviceSolution::Npn { region, ib, ic } => {
                assert_eq!(region, BjtRegion::Active);
                assert_close(ib, 2.92e-6, 5e-8);
                assert_close(ic, 875e-6, 5e-6);
            }
            _ => panic!("wrong device solution"),
        }
        assert!(op.all_bjts_active());
    }

    #[test]
    fn cutoff_when_base_grounded() {
        let mut nl = Netlist::new();
        let vcc = nl.add_net("vcc");
        let v1 = nl.add_net("v1");
        nl.add_voltage_source("Vcc", vcc, Net::GROUND, 18.0)
            .unwrap();
        nl.add_resistor("Rc", vcc, v1, 1e3, 0.0).unwrap();
        let t = nl
            .add_npn("T1", v1, Net::GROUND, Net::GROUND, 100.0, 0.7, 0.0)
            .unwrap();
        let op = solve_dc(&nl).unwrap();
        match op.device(t) {
            DeviceSolution::Npn { region, .. } => assert_eq!(region, BjtRegion::Cutoff),
            _ => panic!("wrong device solution"),
        }
        assert_close(op.voltage(v1), 18.0, 1e-6);
        assert!(!op.all_bjts_active());
    }

    #[test]
    fn saturation_when_base_overdriven() {
        // Huge base drive through a small base resistor with a large
        // collector resistor: Vce pins at VCE_SAT.
        let mut nl = Netlist::new();
        let vcc = nl.add_net("vcc");
        let vb = nl.add_net("vb");
        let base = nl.add_net("base");
        let v1 = nl.add_net("v1");
        nl.add_voltage_source("Vcc", vcc, Net::GROUND, 10.0)
            .unwrap();
        nl.add_voltage_source("Vb", vb, Net::GROUND, 5.0).unwrap();
        nl.add_resistor("Rb", vb, base, 1e3, 0.0).unwrap();
        nl.add_resistor("Rc", vcc, v1, 10e3, 0.0).unwrap();
        let t = nl
            .add_npn("T1", v1, base, Net::GROUND, 100.0, 0.7, 0.0)
            .unwrap();
        let op = solve_dc(&nl).unwrap();
        match op.device(t) {
            DeviceSolution::Npn { region, ib, ic } => {
                assert_eq!(region, BjtRegion::Saturated);
                assert!(ib > 0.0);
                assert!(ic <= 100.0 * ib + 1e-12);
            }
            _ => panic!("wrong device solution"),
        }
        assert_close(op.voltage(v1), VCE_SAT, 1e-6);
    }

    #[test]
    fn injected_fault_changes_operating_point() {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        let r1 = nl.add_resistor("R1", vin, mid, 1e3, 0.0).unwrap();
        nl.add_resistor("R2", mid, Net::GROUND, 1e3, 0.0).unwrap();
        let healthy = solve_dc(&nl).unwrap();
        assert_close(healthy.voltage(mid), 5.0, 1e-6);
        let faulty = inject_faults(&nl, &[(r1, Fault::Open)]).unwrap();
        let op = solve_dc(&faulty).unwrap();
        assert!(op.voltage(mid) < 0.01);
        let faulty = inject_faults(&nl, &[(r1, Fault::Short)]).unwrap();
        let op = solve_dc(&faulty).unwrap();
        assert_close(op.voltage(mid), 10.0, 1e-4);
    }

    #[test]
    fn open_connection_floats_branch() {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        nl.add_resistor("R1", vin, mid, 1e3, 0.0).unwrap();
        let r2 = nl.add_resistor("R2", mid, Net::GROUND, 1e3, 0.0).unwrap();
        let cut = open_connection(&nl, r2, mid).unwrap();
        let op = solve_dc(&cut).unwrap();
        // With R2 detached, no current flows: mid sits at the source level.
        assert_close(op.voltage(mid), 10.0, 1e-5);
    }

    #[test]
    fn singular_systems_are_reported() {
        // Two ideal sources fighting over one net.
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        nl.add_voltage_source("V1", a, Net::GROUND, 1.0).unwrap();
        nl.add_voltage_source("V2", a, Net::GROUND, 2.0).unwrap();
        assert!(matches!(solve_dc(&nl), Err(CircuitError::SingularSystem)));
    }
}
