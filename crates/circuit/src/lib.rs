//! Analog-circuit substrate of the FLAMES reproduction.
//!
//! The FLAMES paper diagnoses physical analog boards; this crate supplies
//! everything that stood on the lab bench:
//!
//! * [`Netlist`] — nets and components (resistors, sources, constant-drop
//!   diodes, linear-region NPN transistors, ideal gain blocks);
//! * [`fault`] — injectable defects (open / short / parametric) including
//!   interconnect opens, the paper's Fig. 7 defect menu;
//! * [`solve`] — a modified-nodal-analysis DC solver that plays the role
//!   of the measurement bench: it produces the "measured" node voltages
//!   the diagnosis engine consumes;
//! * [`constraint`] — extraction of the *model database* (§6.2 of the
//!   paper): Ohm/Kirchhoff/device constraints, each guarded by the
//!   correctness assumptions of the components involved;
//! * [`predict`] — tolerance-aware fuzzy predictions of nominal test-point
//!   values (sensitivity corners around the nominal solve);
//! * [`circuits`] — ready-made builders for every circuit in the paper
//!   (Fig. 2 amplifier branch, Fig. 5 diode network, Fig. 6 three-stage
//!   amplifier) plus parameterizable cascades for scaling experiments.
//!
//! # Example
//!
//! ```
//! use flames_circuit::{solve::solve_dc, Net, Netlist};
//!
//! # fn main() -> Result<(), flames_circuit::CircuitError> {
//! let mut nl = Netlist::new();
//! let vin = nl.add_net("vin");
//! let out = nl.add_net("out");
//! nl.add_voltage_source("V", vin, Net::GROUND, 10.0)?;
//! nl.add_resistor("R1", vin, out, 1000.0, 0.05)?;
//! nl.add_resistor("R2", out, Net::GROUND, 1000.0, 0.05)?;
//! let op = solve_dc(&nl)?;
//! assert!((op.voltage(out) - 5.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod netlist;

pub mod ac;
pub mod circuits;
pub mod compile;
pub mod constraint;
pub mod fault;
pub mod predict;
pub mod solve;

pub use error::CircuitError;
pub use fault::Fault;
pub use netlist::{CompId, Component, ComponentKind, Net, Netlist};

/// Convenient result alias for fallible circuit operations.
pub type Result<T, E = CircuitError> = std::result::Result<T, E>;
