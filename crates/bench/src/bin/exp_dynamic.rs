//! **E7 — §9 dynamic mode**: frequency-response diagnosis of the RC
//! band-pass chain.
//!
//! The paper states FLAMES was "tried on different kinds and sizes of
//! circuits, either in dynamic mode or in static one" without printing a
//! dynamic table; this experiment supplies one. Reactive faults are
//! invisible at DC (the whole chain idles at 0 V) and only the
//! small-signal amplitudes expose them:
//!
//! * `C2 ×3` — the upper corner slides from 10 kHz to ~3 kHz;
//! * `C1 open` — the signal path dies everywhere;
//! * `R1 ×2` — the lower corner halves and the high-pass node lifts.
//!
//! Run with `cargo run -p flames-bench --bin exp_dynamic`.

use flames_bench::{header, row};
use flames_circuit::circuits::bandpass;
use flames_circuit::fault::inject_faults;
use flames_circuit::{Fault, Netlist};
use flames_core::dynamic::{AcDiagnoser, AcProbe};

const REL_IMPRECISION: f64 = 0.02;
const TOLERANCE: f64 = 0.05;

fn main() {
    header("E7 / §9 dynamic mode — band-pass frequency-response diagnosis (tol 5 %, probe ±2 %)");

    let bp = bandpass(TOLERANCE);
    let hp_cone = vec![bp.c1, bp.r1];
    let mut full_cone = hp_cone.clone();
    full_cone.extend([bp.amp, bp.r2, bp.c2]);
    let probes = vec![
        AcProbe::new(bp.n1, 100.0, "n1@100", hp_cone.clone()),
        AcProbe::new(bp.n1, 1e3, "n1@1k", hp_cone.clone()),
        AcProbe::new(bp.out, 3e3, "out@3k", full_cone.clone()),
        AcProbe::new(bp.out, 10e3, "out@10k", full_cone.clone()),
        AcProbe::new(bp.out, 100e3, "out@100k", full_cone.clone()),
        AcProbe::phase(bp.out, 10e3, "ph(out)@10k", full_cone),
    ];
    let diagnoser = AcDiagnoser::new(&bp.netlist, bp.input, 1.0, probes)
        .expect("band-pass solves at every corner");

    println!("fuzzy amplitude predictions (V, for a 1 V stimulus):");
    let w = [10, 30];
    row(&["probe", "prediction"], &w);
    for (k, probe) in diagnoser.probes().iter().enumerate() {
        row(
            &[&probe.name, &format!("{:.3}", diagnoser.prediction(k))],
            &w,
        );
    }
    println!();

    let boards: Vec<(&str, Netlist)> = vec![
        ("healthy", bp.netlist.clone()),
        (
            "C2 x3 (upper pole shifted down)",
            inject_faults(&bp.netlist, &[(bp.c2, Fault::ParamFactor(3.0))]).expect("fault injects"),
        ),
        (
            "C1 open (coupling lost)",
            inject_faults(&bp.netlist, &[(bp.c1, Fault::Open)]).expect("fault injects"),
        ),
        (
            "R1 x2 (lower pole shifted down)",
            inject_faults(&bp.netlist, &[(bp.r1, Fault::ParamFactor(2.0))]).expect("fault injects"),
        ),
    ];

    for (label, board) in boards {
        println!("DEFECT: {label}");
        let mut session = diagnoser.session();
        for k in 0..diagnoser.probes().len() {
            let probe = &diagnoser.probes()[k];
            let name = probe.name.clone();
            // Amplitude meters: ±2 % of reading; phase meters: ±0.36°.
            let imprecision = match probe.observable {
                flames_core::dynamic::AcObservable::Amplitude => REL_IMPRECISION,
                flames_core::dynamic::AcObservable::PhaseDegrees => 0.002,
            };
            let reading = diagnoser
                .read_probe(&board, k, imprecision)
                .expect("board solves");
            session.measure(&name, reading).expect("probe exists");
        }
        let dcs: Vec<String> = diagnoser
            .probes()
            .iter()
            .map(|p| {
                format!(
                    "{}: {}",
                    p.name,
                    session.consistency(&p.name).expect("probed")
                )
            })
            .collect();
        println!("  Dc per probe: {}", dcs.join("  "));
        let refined = session.refined_candidates(6, 0.5);
        if refined.is_empty() {
            println!("  ==> consistent (no suspects)");
        } else {
            let rendered: Vec<String> = refined
                .iter()
                .map(|c| format!("{{{}}} {:.2}", c.members.join(", "), c.degree))
                .collect();
            println!("  ==> {}", rendered.join("  "));
        }
        println!();
    }

    println!(
        "shape check: reactive faults invisible to every static (DC) probe are \
         flagged and localized from amplitude Dc gradations across frequencies — \
         the dynamic mode the paper exercised but did not tabulate."
    );
}
