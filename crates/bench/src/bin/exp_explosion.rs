//! **E6 — §10 claim**: "propagation of fuzzy intervals avoids possible
//! explosions either in treating tolerances or in sets of candidates
//! resulting from the ATMS".
//!
//! On N-stage gain cascades (gain 1.3, ±5 %) with every stage output
//! probed, two defect severities are injected at the middle stage:
//!
//! * a **soft** one (×0.96 — inside the crisp per-stage tolerance walls): the
//!   crisp engine finds *no* conflict at any depth, while the fuzzy
//!   engine's graded coincidences flag the weak stage and rank it first;
//! * a **hard** one (×0.70): both engines detect it; the fuzzy engine's
//!   degree-filtered refinement stays a single candidate, the crisp
//!   engine reports its unranked hitting sets.
//!
//! The second table sparsifies the probes (only the final output) with
//! two simultaneous soft faults: the crisp candidate space grows with
//! depth while the fuzzy refinement stays bounded.
//!
//! Run with `cargo run -p flames-bench --bin exp_explosion`.

use flames_bench::{header, row};
use flames_circuit::circuits::cascade;
use flames_circuit::constraint::{extract, ExtractOptions};
use flames_circuit::fault::inject_faults;
use flames_circuit::predict::{measure_all, nominal_predictions};
use flames_circuit::{Fault, Netlist};
use flames_core::{Diagnoser, DiagnoserConfig, Session};
use flames_crisp::{CrispConfig, CrispPropagator, Interval};

const MEAS_IMPRECISION: f64 = 0.01;
const TOLERANCE: f64 = 0.05;
const GAIN: f64 = 1.3;

struct Outcome {
    fuzzy_nogoods: usize,
    fuzzy_refined: usize,
    fuzzy_top_correct: bool,
    fuzzy_contains_expected: bool,
    crisp_nogoods: usize,
    crisp_candidates: usize,
    millis: u128,
}

fn run_case(
    c: &flames_circuit::circuits::Cascade,
    board: &Netlist,
    probe_all: bool,
    expected: &str,
) -> Outcome {
    let probes: Vec<usize> = if probe_all {
        (0..c.stages.len()).collect()
    } else {
        vec![c.stages.len() - 1]
    };
    let nets: Vec<_> = probes.iter().map(|&k| c.stages[k]).collect();
    let readings = measure_all(board, &nets, MEAS_IMPRECISION).expect("cascade solves");

    let start = std::time::Instant::now();
    // --- Fuzzy engine. ---
    let diagnoser = Diagnoser::from_netlist(
        &c.netlist,
        c.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .expect("cascade solves at corners");
    let mut session: Session<'_> = diagnoser.session();
    for (&k, reading) in probes.iter().zip(&readings) {
        session.measure_point(k, *reading).expect("valid point");
    }
    session.propagate();
    let fuzzy_nogoods = session.propagator().atms().nogoods().len();
    let refined = session.refined_candidates(4096, 0.5);
    let fuzzy_top_correct = refined
        .first()
        .is_some_and(|cand| cand.members.iter().any(|m| m == expected));
    let fuzzy_contains_expected = refined
        .iter()
        .any(|cand| cand.members.iter().any(|m| m == expected));
    let millis = start.elapsed().as_millis();

    // --- Crisp engine over the same network and readings. ---
    let network = extract(&c.netlist, ExtractOptions::default());
    let mut crisp = CrispPropagator::new(&c.netlist, &network, CrispConfig::default());
    let preds = nominal_predictions(&c.netlist, &nets).expect("cascade solves");
    for ((&k, reading), pred) in probes.iter().zip(&readings).zip(&preds) {
        let q = network.voltage_quantity(c.stages[k]);
        crisp.observe(q, Interval::from(*reading));
        crisp.predict(q, Interval::from(*pred), &c.test_points[k].support);
    }
    crisp.run();
    Outcome {
        fuzzy_nogoods,
        fuzzy_refined: refined.len(),
        fuzzy_top_correct,
        fuzzy_contains_expected,
        crisp_nogoods: crisp.atms().nogoods().len(),
        crisp_candidates: crisp.candidates(2, 4096).len(),
        millis,
    }
}

fn main() {
    header("E6 / §10 — soft-fault visibility and candidate growth vs cascade depth");

    println!("dense probes (every stage), single middle-stage fault:");
    let w = [4, 7, 14, 14, 13, 14, 18, 8];
    row(
        &[
            "N",
            "fault",
            "fuzzy nogoods",
            "fuzzy refined",
            "top-correct",
            "crisp nogoods",
            "crisp candidates",
            "ms",
        ],
        &w,
    );
    for n in [2usize, 4, 8, 12, 16, 24, 32] {
        let c = cascade(n, GAIN, TOLERANCE);
        let mid = n / 2;
        let expected = c.netlist.component(c.amps[mid]).name().to_owned();
        for (label, factor) in [("soft", 0.96), ("hard", 0.70)] {
            let board = inject_faults(&c.netlist, &[(c.amps[mid], Fault::ParamFactor(factor))])
                .expect("fault injects");
            let o = run_case(&c, &board, true, &expected);
            row(
                &[
                    &n.to_string(),
                    label,
                    &o.fuzzy_nogoods.to_string(),
                    &o.fuzzy_refined.to_string(),
                    &o.fuzzy_top_correct.to_string(),
                    &o.crisp_nogoods.to_string(),
                    &o.crisp_candidates.to_string(),
                    &o.millis.to_string(),
                ],
                &w,
            );
        }
    }

    println!();
    println!("sparse probe (final output only), two soft faults (×0.90 at N/3 and 2N/3):");
    row(
        &[
            "N",
            "fault",
            "fuzzy nogoods",
            "fuzzy refined",
            "contains-bad",
            "crisp nogoods",
            "crisp candidates",
            "ms",
        ],
        &w,
    );
    for n in [4usize, 8, 12, 16, 24, 32] {
        let c = cascade(n, GAIN, TOLERANCE);
        let (f1, f2) = (n / 3, 2 * n / 3);
        let expected = c.netlist.component(c.amps[f1]).name().to_owned();
        let board = inject_faults(
            &c.netlist,
            &[
                (c.amps[f1], Fault::ParamFactor(0.90)),
                (c.amps[f2], Fault::ParamFactor(0.90)),
            ],
        )
        .expect("faults inject");
        let o = run_case(&c, &board, false, &expected);
        row(
            &[
                &n.to_string(),
                "2×soft",
                &o.fuzzy_nogoods.to_string(),
                &o.fuzzy_refined.to_string(),
                &o.fuzzy_contains_expected.to_string(),
                &o.crisp_nogoods.to_string(),
                &o.crisp_candidates.to_string(),
                &o.millis.to_string(),
            ],
            &w,
        );
    }

    println!();
    println!(
        "shape check: the crisp engine reports 0 nogoods on every soft row (the \
         deviation hides inside the interval walls — §4.2's masking at scale), \
         while the fuzzy engine's graded nogoods keep flagging and ranking the \
         weak stage; with sparse probes the fuzzy refinement stays bounded while \
         unranked crisp/raw candidate sets grow with N."
    );
}
