//! Perf experiment: the bitset-interned environment kernel vs the seed's
//! sorted-vec kernel, on three ATMS workloads:
//!
//! * **label propagation** — a layered join network of weighted
//!   justifications (cross-product unions + Pareto minimization), the hot
//!   loop of §6's fuzzy ATMS;
//! * **nogood installs** — Pareto-minimal maintenance of the graded
//!   conflict store;
//! * **hitting sets** — Reiter candidate generation over the conflicts.
//!
//! The baseline is the seed revision's `Env`/`pareto_minimize`/
//! `install_nogood`/`minimal_hitting_sets`, embedded below verbatim
//! (modulo naming) so the comparison survives further kernel changes.
//! Both sides run the same randomized workloads and are cross-checked for
//! identical results before timing. Writes `BENCH_atms.json` in the
//! current directory.

use flames_atms::hitting::minimal_hitting_sets;
use flames_atms::{Env, FuzzyAtms};
use flames_bench::harness::Harness;
use flames_bench::rng::SplitMix64;
use std::hint::black_box;
use std::time::Duration;

// ---------------------------------------------------------------------
// The seed kernel, embedded as the baseline.
// ---------------------------------------------------------------------

mod legacy {
    use std::collections::VecDeque;

    /// The seed's environment: a sorted, deduplicated `Vec<u32>`.
    #[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
    pub struct Env {
        ids: Vec<u32>,
    }

    impl Env {
        pub fn empty() -> Self {
            Self::default()
        }

        pub fn singleton(id: u32) -> Self {
            Self { ids: vec![id] }
        }

        pub fn from_ids(ids: impl IntoIterator<Item = u32>) -> Self {
            let mut ids: Vec<u32> = ids.into_iter().collect();
            ids.sort_unstable();
            ids.dedup();
            Self { ids }
        }

        pub fn len(&self) -> usize {
            self.ids.len()
        }

        pub fn is_empty(&self) -> bool {
            self.ids.is_empty()
        }

        pub fn ids(&self) -> &[u32] {
            &self.ids
        }

        pub fn union(&self, other: &Self) -> Self {
            let mut ids = Vec::with_capacity(self.ids.len() + other.ids.len());
            let (mut i, mut j) = (0, 0);
            while i < self.ids.len() && j < other.ids.len() {
                match self.ids[i].cmp(&other.ids[j]) {
                    std::cmp::Ordering::Less => {
                        ids.push(self.ids[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        ids.push(other.ids[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        ids.push(self.ids[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            ids.extend_from_slice(&self.ids[i..]);
            ids.extend_from_slice(&other.ids[j..]);
            Self { ids }
        }

        pub fn is_subset_of(&self, other: &Self) -> bool {
            if self.ids.len() > other.ids.len() {
                return false;
            }
            let mut j = 0;
            for &id in &self.ids {
                loop {
                    if j == other.ids.len() {
                        return false;
                    }
                    match other.ids[j].cmp(&id) {
                        std::cmp::Ordering::Less => j += 1,
                        std::cmp::Ordering::Equal => {
                            j += 1;
                            break;
                        }
                        std::cmp::Ordering::Greater => return false,
                    }
                }
            }
            true
        }

        pub fn intersects(&self, other: &Self) -> bool {
            let (mut i, mut j) = (0, 0);
            while i < self.ids.len() && j < other.ids.len() {
                match self.ids[i].cmp(&other.ids[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => return true,
                }
            }
            false
        }

        pub fn with(&self, id: u32) -> Self {
            if self.ids.binary_search(&id).is_ok() {
                return self.clone();
            }
            let mut ids = self.ids.clone();
            let pos = ids.partition_point(|&x| x < id);
            ids.insert(pos, id);
            Self { ids }
        }
    }

    /// The seed's ⊆-minimization (quadratic scan over a length-sorted list).
    pub fn minimize(mut envs: Vec<Env>) -> Vec<Env> {
        envs.sort_by_key(Env::len);
        let mut keep: Vec<Env> = Vec::with_capacity(envs.len());
        for e in envs {
            if !keep.iter().any(|k| k.is_subset_of(&e)) {
                keep.push(e);
            }
        }
        keep
    }

    #[derive(Debug, Clone)]
    pub struct WeightedEnv {
        pub env: Env,
        pub degree: f64,
    }

    /// The seed's Pareto minimization of weighted environments.
    pub fn pareto_minimize(mut envs: Vec<WeightedEnv>) -> Vec<WeightedEnv> {
        envs.sort_by(|a, b| {
            a.env
                .len()
                .cmp(&b.env.len())
                .then_with(|| b.degree.partial_cmp(&a.degree).expect("finite"))
        });
        let mut keep: Vec<WeightedEnv> = Vec::with_capacity(envs.len());
        for we in envs {
            let dominated = keep
                .iter()
                .any(|k| k.env.is_subset_of(&we.env) && k.degree >= we.degree);
            if !dominated {
                keep.push(we);
            }
        }
        keep
    }

    struct Node {
        label: Vec<WeightedEnv>,
        consumers: Vec<u32>,
        is_contradiction: bool,
        #[allow(dead_code)] // parity with the seed's bookkeeping
        name: String,
    }

    #[derive(Clone)]
    struct Justification {
        antecedents: Vec<usize>,
        consequent: usize,
        degree: f64,
        #[allow(dead_code)] // parity with the seed's informant strings
        informant: String,
    }

    /// The seed's fuzzy ATMS propagation core (min t-norm), stripped of
    /// naming/error bookkeeping that is identical on both sides.
    pub struct FuzzyAtms {
        nodes: Vec<Node>,
        justifications: Vec<Justification>,
        nogoods: Vec<WeightedEnv>,
        kill_threshold: f64,
    }

    impl FuzzyAtms {
        pub fn new() -> Self {
            Self {
                nodes: Vec::new(),
                justifications: Vec::new(),
                nogoods: Vec::new(),
                kill_threshold: 1.0,
            }
        }

        pub fn add_node(&mut self, name: String) -> usize {
            self.push_node(name, Vec::new(), false)
        }

        pub fn add_assumption(&mut self, id: u32, name: String) -> usize {
            let label = vec![WeightedEnv {
                env: Env::singleton(id),
                degree: 1.0,
            }];
            self.push_node(name, label, false)
        }

        pub fn justify_weighted(
            &mut self,
            antecedents: Vec<usize>,
            consequent: usize,
            degree: f64,
            informant: &str,
        ) {
            let jid = u32::try_from(self.justifications.len()).expect("< 2^32");
            for &a in &antecedents {
                self.nodes[a].consumers.push(jid);
            }
            self.justifications.push(Justification {
                antecedents,
                consequent,
                degree,
                informant: informant.to_owned(),
            });
            self.propagate_from(jid);
        }

        pub fn add_nogood(&mut self, env: Env, degree: f64) {
            self.install_nogood(WeightedEnv { env, degree });
        }

        pub fn label(&self, node: usize) -> &[WeightedEnv] {
            &self.nodes[node].label
        }

        pub fn nogoods(&self) -> &[WeightedEnv] {
            &self.nogoods
        }

        fn push_node(
            &mut self,
            name: String,
            label: Vec<WeightedEnv>,
            is_contradiction: bool,
        ) -> usize {
            self.nodes.push(Node {
                label,
                consumers: Vec::new(),
                is_contradiction,
                name,
            });
            self.nodes.len() - 1
        }

        fn is_killed(&self, env: &Env) -> bool {
            self.nogoods
                .iter()
                .any(|n| n.degree >= self.kill_threshold && n.env.is_subset_of(env))
        }

        fn propagate_from(&mut self, start: u32) {
            let mut queue: VecDeque<u32> = VecDeque::new();
            queue.push_back(start);
            while let Some(jid) = queue.pop_front() {
                let j = self.justifications[jid as usize].clone();
                let mut candidates = vec![WeightedEnv {
                    env: Env::empty(),
                    degree: j.degree,
                }];
                let mut dead = false;
                for &a in &j.antecedents {
                    let label = &self.nodes[a].label;
                    if label.is_empty() {
                        dead = true;
                        break;
                    }
                    let mut next = Vec::with_capacity(candidates.len() * label.len());
                    for c in &candidates {
                        for e in label {
                            next.push(WeightedEnv {
                                env: c.env.union(&e.env),
                                degree: c.degree.min(e.degree),
                            });
                        }
                    }
                    candidates = pareto_minimize(next);
                }
                if dead {
                    continue;
                }
                candidates.retain(|we| !self.is_killed(&we.env));
                if candidates.is_empty() {
                    continue;
                }
                if self.nodes[j.consequent].is_contradiction {
                    for we in candidates {
                        self.install_nogood(we);
                    }
                    continue;
                }
                if self.merge_label(j.consequent, candidates) {
                    for &c in &self.nodes[j.consequent].consumers {
                        if !queue.contains(&c) {
                            queue.push_back(c);
                        }
                    }
                }
            }
        }

        fn merge_label(&mut self, node: usize, candidates: Vec<WeightedEnv>) -> bool {
            let label = &mut self.nodes[node].label;
            let before = label.clone();
            let mut all = before.clone();
            all.extend(candidates);
            let merged = pareto_minimize(all);
            let changed = merged.len() != before.len()
                || merged.iter().any(|we| {
                    !before
                        .iter()
                        .any(|b| b.env == we.env && (b.degree - we.degree).abs() < 1e-12)
                });
            self.nodes[node].label = merged;
            changed
        }

        fn install_nogood(&mut self, ng: WeightedEnv) {
            if self
                .nogoods
                .iter()
                .any(|n| n.env.is_subset_of(&ng.env) && n.degree >= ng.degree)
            {
                return;
            }
            self.nogoods
                .retain(|n| !(ng.env.is_subset_of(&n.env) && ng.degree >= n.degree));
            self.nogoods.push(ng);
            let kill = self.kill_threshold;
            let nogoods = self.nogoods.clone();
            for node in &mut self.nodes {
                node.label.retain(|we| {
                    !nogoods
                        .iter()
                        .any(|n| n.degree >= kill && n.env.is_subset_of(&we.env))
                });
            }
        }
    }

    /// The seed's Reiter HS-tree search.
    pub fn minimal_hitting_sets(conflicts: &[Env], max_size: usize, max_count: usize) -> Vec<Env> {
        let mut conflicts: Vec<&Env> = conflicts.iter().filter(|c| !c.is_empty()).collect();
        if conflicts.is_empty() {
            return vec![Env::empty()];
        }
        conflicts.sort_by_key(|c| c.len());
        let mut found: Vec<Env> = Vec::new();
        let mut stack: Vec<Env> = vec![Env::empty()];
        while let Some(partial) = stack.pop() {
            if found.len() >= max_count {
                break;
            }
            if found.iter().any(|f| f.is_subset_of(&partial)) {
                continue;
            }
            match conflicts.iter().find(|c| !partial.intersects(c)) {
                None => found.push(partial),
                Some(unhit) => {
                    if partial.len() >= max_size {
                        continue;
                    }
                    for &a in unhit.ids() {
                        stack.push(partial.with(a));
                    }
                }
            }
        }
        minimize(found)
    }
}

// ---------------------------------------------------------------------
// Workload descriptions, generated once and replayed on both kernels.
// ---------------------------------------------------------------------

/// One internal node of the layered join network: alternative
/// justifications, each a set of antecedent indices into the previous
/// layer plus a degree. Multiple incomparable derivations are what make
/// labels grow — the explosion the fuzzy ATMS must manage.
struct JoinNode {
    justs: Vec<(Vec<usize>, f64)>,
}

struct PropagationWorkload {
    assumptions: usize,
    /// `layers[l][k]` is node `k` of layer `l + 1` (layer 0 = assumptions).
    layers: Vec<Vec<JoinNode>>,
    /// Graded conflicts installed before the network is built.
    nogoods: Vec<(Vec<u32>, f64)>,
}

fn propagation_workload(r: &mut SplitMix64) -> PropagationWorkload {
    // Explosion-prone regime (the paper's E6): three-way joins over a wide
    // assumption base grow labels to dozens of alternative environments,
    // which is where label maintenance dominates diagnosis time. The
    // nogoods are partial (below the kill threshold), so they grade but
    // do not prune.
    let assumptions = 48;
    let depth = 3;
    let width = 12;
    let layers: Vec<Vec<JoinNode>> = (0..depth)
        .map(|_| {
            (0..width)
                .map(|_| JoinNode {
                    justs: (0..3)
                        .map(|_| {
                            let ants = (0..2).map(|_| r.below(width as u64) as usize).collect();
                            (ants, r.range_f64(0.3, 1.0))
                        })
                        .collect(),
                })
                .collect()
        })
        .collect();
    let nogoods = (0..6)
        .map(|_| {
            let ids = (0..3).map(|_| r.below(assumptions as u64) as u32).collect();
            (ids, r.range_f64(0.2, 0.9))
        })
        .collect();
    PropagationWorkload {
        assumptions,
        layers,
        nogoods,
    }
}

/// Runs the layered network on the current kernel; returns the total
/// number of label environments (the unit of the throughput metric).
fn run_new_propagation(w: &PropagationWorkload) -> usize {
    let mut atms = FuzzyAtms::new();
    let assumptions: Vec<_> = (0..w.assumptions)
        .map(|i| atms.add_assumption(format!("a{i}")))
        .collect();
    for (ids, d) in &w.nogoods {
        atms.add_nogood(Env::from_ids(ids.iter().copied()), *d);
    }
    let mut prev: Vec<_> = assumptions
        .iter()
        .map(|&a| atms.assumption_node(a))
        .collect();
    let mut all_nodes = Vec::new();
    for (l, layer) in w.layers.iter().enumerate() {
        let mut next = Vec::with_capacity(layer.len());
        for (k, jn) in layer.iter().enumerate() {
            let node = atms.add_node(format!("n{l}_{k}"));
            for (antecedents, degree) in &jn.justs {
                let mut idx: Vec<usize> = antecedents.clone();
                idx.sort_unstable();
                idx.dedup();
                let ants: Vec<_> = idx.into_iter().map(|i| prev[i]).collect();
                atms.justify_weighted(ants, node, *degree, "join").unwrap();
            }
            next.push(node);
            all_nodes.push(node);
        }
        prev = next;
    }
    all_nodes
        .iter()
        .map(|&n| atms.label(n).unwrap().len())
        .sum()
}

/// The same network on the embedded seed kernel.
fn run_legacy_propagation(w: &PropagationWorkload) -> usize {
    let mut atms = legacy::FuzzyAtms::new();
    let assumptions: Vec<_> = (0..w.assumptions)
        .map(|i| atms.add_assumption(u32::try_from(i).expect("small"), format!("a{i}")))
        .collect();
    for (ids, d) in &w.nogoods {
        atms.add_nogood(legacy::Env::from_ids(ids.iter().copied()), *d);
    }
    let mut prev = assumptions;
    let mut all_nodes = Vec::new();
    for (l, layer) in w.layers.iter().enumerate() {
        let mut next = Vec::with_capacity(layer.len());
        for (k, jn) in layer.iter().enumerate() {
            let node = atms.add_node(format!("n{l}_{k}"));
            for (antecedents, degree) in &jn.justs {
                let mut idx: Vec<usize> = antecedents.clone();
                idx.sort_unstable();
                idx.dedup();
                let ants: Vec<_> = idx.into_iter().map(|i| prev[i]).collect();
                atms.justify_weighted(ants, node, *degree, "join");
            }
            next.push(node);
            all_nodes.push(node);
        }
        prev = next;
    }
    all_nodes.iter().map(|&n| atms.label(n).len()).sum()
}

fn nogood_workload(r: &mut SplitMix64) -> Vec<(Vec<u32>, f64)> {
    (0..400)
        .map(|_| {
            let len = 1 + r.below(4) as usize;
            let ids = (0..len).map(|_| r.below(32) as u32).collect();
            (ids, r.range_f64(0.05, 1.0))
        })
        .collect()
}

fn run_new_nogoods(w: &[(Vec<u32>, f64)]) -> usize {
    let mut atms = FuzzyAtms::new();
    for i in 0..32 {
        atms.add_assumption(format!("a{i}"));
    }
    for (ids, d) in w {
        atms.add_nogood(Env::from_ids(ids.iter().copied()), *d);
    }
    atms.nogoods().len()
}

fn run_legacy_nogoods(w: &[(Vec<u32>, f64)]) -> usize {
    let mut atms = legacy::FuzzyAtms::new();
    for (ids, d) in w {
        atms.add_nogood(legacy::Env::from_ids(ids.iter().copied()), *d);
    }
    atms.nogoods().len()
}

fn hitting_workload(r: &mut SplitMix64) -> Vec<Vec<u32>> {
    (0..12)
        .map(|_| {
            let len = 2 + r.below(3) as usize;
            (0..len).map(|_| r.below(20) as u32).collect()
        })
        .collect()
}

fn run_new_hitting(w: &[Vec<u32>]) -> usize {
    let conflicts: Vec<Env> = w
        .iter()
        .map(|ids| Env::from_ids(ids.iter().copied()))
        .collect();
    minimal_hitting_sets(&conflicts, usize::MAX, 100_000).len()
}

fn run_legacy_hitting(w: &[Vec<u32>]) -> usize {
    let conflicts: Vec<legacy::Env> = w
        .iter()
        .map(|ids| legacy::Env::from_ids(ids.iter().copied()))
        .collect();
    legacy::minimal_hitting_sets(&conflicts, usize::MAX, 100_000).len()
}

// ---------------------------------------------------------------------

struct Row {
    name: &'static str,
    legacy_ns: f64,
    new_ns: f64,
    /// Work units per run (label envs / installs / minimal sets).
    units: f64,
    unit: &'static str,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.legacy_ns / self.new_ns
    }
}

fn main() {
    let mut r = SplitMix64::new(0xF1A3E5);
    let prop = propagation_workload(&mut r);
    let nogoods = nogood_workload(&mut r);
    let hitting = hitting_workload(&mut r);

    // Equivalence gate: both kernels must produce identical results on
    // every workload before any timing is trusted.
    let prop_envs = run_new_propagation(&prop);
    assert_eq!(prop_envs, run_legacy_propagation(&prop), "label mismatch");
    let retained = run_new_nogoods(&nogoods);
    assert_eq!(retained, run_legacy_nogoods(&nogoods), "nogood mismatch");
    let sets = run_new_hitting(&hitting);
    assert_eq!(sets, run_legacy_hitting(&hitting), "hitting-set mismatch");

    let h = Harness::new("exp_perf").with_budget(Duration::from_millis(400));
    let rows = [
        Row {
            name: "label_propagation",
            legacy_ns: h.bench("label_propagation/legacy", || {
                black_box(run_legacy_propagation(&prop))
            }),
            new_ns: h.bench("label_propagation/new", || {
                black_box(run_new_propagation(&prop))
            }),
            units: prop_envs as f64,
            unit: "envs",
        },
        Row {
            name: "nogood_install",
            legacy_ns: h.bench("nogood_install/legacy", || {
                black_box(run_legacy_nogoods(&nogoods))
            }),
            new_ns: h.bench("nogood_install/new", || {
                black_box(run_new_nogoods(&nogoods))
            }),
            units: nogoods.len() as f64,
            unit: "installs",
        },
        Row {
            name: "hitting_sets",
            legacy_ns: h.bench("hitting_sets/legacy", || {
                black_box(run_legacy_hitting(&hitting))
            }),
            new_ns: h.bench("hitting_sets/new", || black_box(run_new_hitting(&hitting))),
            units: sets as f64,
            unit: "minimal_sets",
        },
    ];

    let entries: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                concat!(
                    "    \"{name}\": {{\n",
                    "      \"legacy_ns_per_iter\": {legacy:.0},\n",
                    "      \"new_ns_per_iter\": {new:.0},\n",
                    "      \"speedup\": {speedup:.2},\n",
                    "      \"unit\": \"{unit}\",\n",
                    "      \"legacy_per_sec\": {legacy_rate:.0},\n",
                    "      \"new_per_sec\": {new_rate:.0}\n",
                    "    }}"
                ),
                name = row.name,
                legacy = row.legacy_ns,
                new = row.new_ns,
                speedup = row.speedup(),
                unit = row.unit,
                legacy_rate = row.units * 1e9 / row.legacy_ns,
                new_rate = row.units * 1e9 / row.new_ns,
            )
        })
        .collect();
    let min_speedup = rows.iter().map(Row::speedup).fold(f64::INFINITY, f64::min);

    // Kernel counter deltas over one untimed pass of the new-kernel
    // workloads — the live-observability column (all zeros when the
    // workspace is built with `--no-default-features`).
    let before = flames_obs::MetricsSnapshot::capture();
    black_box(run_new_propagation(&prop));
    black_box(run_new_nogoods(&nogoods));
    black_box(run_new_hitting(&hitting));
    let counters = flames_obs::MetricsSnapshot::capture().delta_since(&before);

    let json = format!(
        "{{\n  \"bench\": \"exp_perf\",\n  \"workloads\": {{\n{}\n  }},\n  \"counters\": {},\n  \"min_speedup\": {min_speedup:.2}\n}}\n",
        entries.join(",\n"),
        counters.to_json(2),
    );

    std::fs::write("BENCH_atms.json", &json).expect("write BENCH_atms.json");
    println!("\n{json}");
    for row in &rows {
        println!("{}: {:.2}x", row.name, row.speedup());
    }
    assert!(
        min_speedup >= 2.0,
        "bitset kernel must be at least 2x the seed kernel (got {min_speedup:.2}x)"
    );
}
