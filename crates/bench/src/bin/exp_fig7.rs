//! **E4 — Fig. 7**: the paper's main results table, regenerated on the
//! reconstructed three-stage amplifier (see `DESIGN.md` for the topology
//! and `EXPERIMENTS.md` for the fault-magnitude calibration).
//!
//! For each defect the binary reports, like the paper's table:
//!
//! * the *initial* suspect set after measuring `Vs` alone ("measuring Vs
//!   to be faulty suspects all the modules with the same degree");
//! * the per-point `Dc` values after probing `V1` and `V2`;
//! * the refined single-fault candidates (`{initial} ==> {refined}`);
//! * the fault-mode annotation inferred for the top refined suspects.
//!
//! Run with `cargo run -p flames-bench --bin exp_fig7`.

use flames_bench::header;
use flames_circuit::circuits::three_stage;
use flames_circuit::fault::{inject_faults, open_connection};
use flames_circuit::predict::measure_all;
use flames_circuit::{Fault, Netlist};
use flames_core::fault_model::{infer_fault_mode, standard_modes};
use flames_core::propagation::PropagatorConfig;
use flames_core::rules::diagnose_with_region_check;
use flames_core::{Diagnoser, DiagnoserConfig};

const TOLERANCE: f64 = 0.02;
const MEAS_IMPRECISION: f64 = 0.05;

fn main() {
    header("E4 / Fig. 7 — diagnoses on the three-stage amplifier (tol 2 %, probe ±0.05 V)");

    let ts = three_stage(TOLERANCE);
    let diagnoser = Diagnoser::from_netlist(
        &ts.netlist,
        ts.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .expect("three-stage amplifier solves at every tolerance corner");
    let modes = standard_modes(TOLERANCE);

    let rows: Vec<(&str, Netlist)> = vec![
        (
            "short circuit on R2",
            inject_faults(&ts.netlist, &[(ts.r2, Fault::Short)]).expect("fault injects"),
        ),
        (
            "R2 slightly high (14k)",
            inject_faults(&ts.netlist, &[(ts.r2, Fault::Param(14_000.0))]).expect("fault injects"),
        ),
        (
            "beta2 low (40)",
            inject_faults(&ts.netlist, &[(ts.t2, Fault::Param(40.0))]).expect("fault injects"),
        ),
        (
            "open circuit on R3",
            inject_faults(&ts.netlist, &[(ts.r3, Fault::Open)]).expect("fault injects"),
        ),
        (
            "open circuit in N1",
            open_connection(&ts.netlist, ts.r3, ts.n1).expect("connection opens"),
        ),
    ];

    for (label, board) in rows {
        println!("DEFECT: {label}");

        // Step 1 — measure Vs alone: the initial suspect set.
        let readings =
            measure_all(&board, &[ts.vs], MEAS_IMPRECISION).expect("faulty board still solves");
        let mut session = diagnoser.session();
        session
            .measure("Vs", readings[0])
            .expect("Vs is a test point");
        session.propagate();
        let initial = session.candidates(1, 64);
        let initial_names: Vec<String> = initial.iter().map(|c| c.members.join("+")).collect();
        if initial_names.is_empty() {
            println!("  after Vs alone: consistent (no suspects)");
        } else {
            println!(
                "  after Vs alone: {{{}}} — all at the same degree",
                initial_names.join(", ")
            );
        }

        // Step 2 — probe V1 and V2; revalidate device models against the
        // measured operating point (§6.2) before reading the refinement.
        let more = measure_all(&board, &[ts.v1, ts.v2], MEAS_IMPRECISION)
            .expect("faulty board still solves");
        let measurements = vec![
            ("Vs".to_owned(), readings[0]),
            ("V1".to_owned(), more[0]),
            ("V2".to_owned(), more[1]),
        ];
        let (session, excused) =
            diagnose_with_region_check(&diagnoser, &measurements).expect("points exist");
        if !excused.is_empty() {
            println!(
                "  model validity: {} out of the linear region (model withdrawn)",
                excused.join(", ")
            );
        }
        let report = session.report();
        let dcs: Vec<String> = report
            .points
            .iter()
            .filter_map(|p| {
                p.consistency
                    .map(|dc| format!("Dc({}m,{}n) = {dc}", p.name, p.name))
            })
            .collect();
        println!("  {}", dcs.join(",  "));

        let refined = &report.refined;
        let rendered: Vec<String> = refined
            .iter()
            .take(5)
            .map(|c| format!("{{{}}} {:.2}", c.members.join(", "), c.degree))
            .collect();
        println!("  ==> {}", rendered.join("  "));

        // Step 3 — fault-mode annotation for the top refined suspects.
        for cand in refined.iter().take(3) {
            let Some(member) = cand.members.first() else {
                continue;
            };
            let Some(comp) = diagnoser.netlist().component_by_name(member) else {
                continue; // connection assumptions have no parameter
            };
            match infer_fault_mode(
                &diagnoser,
                &measurements,
                comp,
                &modes,
                PropagatorConfig::default(),
            ) {
                Ok(md) => {
                    if let (Some(ratio), Some((mode, degree))) = (md.ratio, md.best()) {
                        println!(
                            "  fault model: {member} ratio ≈ {:.2} -> '{mode}' @ {degree:.2}",
                            ratio.core_midpoint()
                        );
                    }
                }
                Err(e) => println!("  fault model: {member}: {e}"),
            }
        }
        println!();
    }

    println!(
        "shape check vs the paper: hard faults (short R2, open R3, open N1) give \
         total conflicts (Dc 0) with the direction pinpointing the stage; soft \
         faults give graded Dc (≈0.9) that only the fuzzy engine can see; \
         probing V1/V2 shrinks the suspect set stage by stage."
    );
}
