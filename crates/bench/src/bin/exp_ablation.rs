//! **Ablations** — the design choices called out in `DESIGN.md` §5,
//! measured on the Fig. 7 soft-fault scenario (R2 = 14 kΩ at 2 %
//! tolerance): what each knob does to detection strength, nogood count
//! and refinement quality. (The timing side lives in the criterion bench
//! `ablation`.)
//!
//! Run with `cargo run -p flames-bench --bin exp_ablation`.

use flames_atms::TNorm;
use flames_bench::{header, row};
use flames_circuit::circuits::three_stage;
use flames_circuit::fault::inject_faults;
use flames_circuit::predict::measure_all;
use flames_circuit::Fault;
use flames_core::propagation::PropagatorConfig;
use flames_core::{Diagnoser, DiagnoserConfig};

fn main() {
    header("Ablations — fuzzy-engine knobs on the soft-R2 scenario (R2=14k, tol 2 %)");

    let ts = three_stage(0.02);
    let board =
        inject_faults(&ts.netlist, &[(ts.r2, Fault::Param(14_000.0))]).expect("fault injects");
    let readings = measure_all(&board, &[ts.vs, ts.v1, ts.v2], 0.05).expect("board solves");

    let variants: Vec<(&str, PropagatorConfig)> = vec![
        (
            "baseline (min, kill=1, thr=.02)",
            PropagatorConfig::default(),
        ),
        (
            "tnorm=product",
            PropagatorConfig {
                tnorm: TNorm::Product,
                ..Default::default()
            },
        ),
        (
            "kill_threshold=0.5",
            PropagatorConfig {
                kill_threshold: 0.5,
                ..Default::default()
            },
        ),
        (
            "conflict_threshold=0.10",
            PropagatorConfig {
                conflict_threshold: 0.10,
                ..Default::default()
            },
        ),
        (
            "conflict_threshold=0.30",
            PropagatorConfig {
                conflict_threshold: 0.30,
                ..Default::default()
            },
        ),
        (
            "max_entries=4",
            PropagatorConfig {
                max_entries: 4,
                ..Default::default()
            },
        ),
        (
            "max_entries=16",
            PropagatorConfig {
                max_entries: 16,
                ..Default::default()
            },
        ),
    ];

    let w = [30, 8, 9, 10, 14, 22];
    row(
        &[
            "variant",
            "steps",
            "nogoods",
            "max-deg",
            "refined-size",
            "refined contains R2",
        ],
        &w,
    );
    for (name, propagator) in variants {
        let diagnoser = Diagnoser::from_netlist(
            &ts.netlist,
            ts.test_points.clone(),
            DiagnoserConfig {
                propagator,
                ..Default::default()
            },
        )
        .expect("amplifier solves");
        let mut s = diagnoser.session();
        s.measure("Vs", readings[0]).expect("point exists");
        s.measure("V1", readings[1]).expect("point exists");
        s.measure("V2", readings[2]).expect("point exists");
        let steps = s.propagate();
        let nogoods = s.propagator().atms().nogoods();
        let max_deg = nogoods.iter().map(|n| n.degree).fold(0.0f64, f64::max);
        let refined = s.refined_candidates(32, 0.5);
        let has_r2 = refined.iter().any(|c| c.members.iter().any(|m| m == "R2"));
        row(
            &[
                name,
                &steps.to_string(),
                &nogoods.len().to_string(),
                &format!("{max_deg:.2}"),
                &refined.len().to_string(),
                &has_r2.to_string(),
            ],
            &w,
        );
    }

    println!();
    println!(
        "reading: the product t-norm weakens long-chain conflicts; a low kill \
         threshold erases graded evidence (fewer nogoods survive); a high \
         conflict threshold starts to mask the soft fault — the defaults sit \
         where detection is kept and noise is dropped."
    );
}
