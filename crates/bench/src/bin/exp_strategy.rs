//! Probe-planning experiment: incremental candidate maintenance and the
//! memoized parallel planner, measured against the recompute paths they
//! replace.
//!
//! Four sections:
//!
//! * **candidates** — the incrementally maintained
//!   [`flames_atms::CandidateSet`] behind `ranked_diagnoses` (de Kleer's
//!   candidate-update step: replay only the conflicts installed since
//!   the previous query) versus `ranked_diagnoses_oracle` (re-enumerate
//!   the HS-tree from the full nogood store on every query) on seeded
//!   random nogood ladders, querying after every install. Gate:
//!   incremental ≥ 3× rebuild.
//! * **probe loop** — `probe_until_isolated` (entropy-term memo,
//!   epoch-tagged candidate cache) versus `probe_until_isolated_oracle`
//!   (the pre-optimization planner, retained verbatim) on the paper's
//!   three-stage amplifier with graded probe costs, on seeded single-
//!   and double-fault gain cascades, and on a wide probing ladder,
//!   under both the fuzzy-entropy and the probabilistic policy. The
//!   loop's wall clock is dominated by wave propagation, which is
//!   *identical work on both paths* (DESIGN.md §10–11), so the
//!   full-loop gates are no-regression bounds.
//! * **planning** — the component the fast path actually replaces,
//!   isolated from the shared propagation: every session state the
//!   probe loops above pass through is captured (cloned), and the
//!   planning step (recommend + the isolation-check candidate query) is
//!   timed over the whole trajectory, fast versus oracle. Gate:
//!   fast ≥ 3× oracle.
//! * **parallel** — `probe_batch` over the ladder fleet, 4 worker
//!   threads versus 1. The planner's contract is *byte-identical runs at
//!   no throughput cost* regardless of placement, so the gate is a
//!   no-regression bound (this container is single-core; the merge
//!   discipline, not the speedup, is what is being pinned).
//!
//! Before any timing, the gates assert the fast paths are byte-exact:
//! the incremental candidate sets must match the batch oracle after
//! every single install, every fast probe run must reproduce the oracle
//! run byte-for-byte, and `recommend` / `probe_batch` must be
//! byte-identical across 1/2/4/8 threads. Writes `BENCH_strategy.json`
//! in the current directory and exits non-zero if a gate fails.

use flames_atms::{Env, FuzzyAtms};
use flames_bench::harness::Harness;
use flames_bench::rng::SplitMix64;
use flames_circuit::circuits::{cascade, three_stage};
use flames_circuit::fault::inject_faults;
use flames_circuit::predict::{measure_all, TestPoint};
use flames_circuit::{Fault, Net, Netlist};
use flames_core::strategy::{
    probe_batch, probe_batch_lanes, probe_until_isolated_oracle, probe_until_isolated_with,
    recommend_oracle, recommend_with, recommend_with_memo, Policy, ProbeRun, CANDIDATE_BUDGET,
};
use flames_core::{Candidate, Diagnoser, DiagnoserConfig, Session};
use flames_fuzzy::entropy::EntropyMemo;
use flames_fuzzy::FuzzyInterval;
use std::hint::black_box;
use std::time::Duration;

const LADDERS: usize = 6;
const INSTALLS_PER_LADDER: usize = 60;
const LADDER_ASSUMPTIONS: usize = 32;
const CASCADE_STAGES: usize = 16;
const LADDER_BRANCHES: usize = 32;
const LADDER_BOARDS: usize = 3;
const STATES_PER_TRAJECTORY: usize = 16;
const MEAS_IMPRECISION: f64 = 0.02;
const THREADS: usize = 4;

/// Seeded random nogood ladders: the conflict streams a long diagnosis
/// session feeds the ATMS, degrees spread over the whole unit interval,
/// conflict sizes 1–4 over a 32-assumption vocabulary.
fn make_ladders() -> Vec<Vec<(Env, f64)>> {
    let mut rng = SplitMix64::new(0x57A7_E610);
    (0..LADDERS)
        .map(|_| {
            (0..INSTALLS_PER_LADDER)
                .map(|_| {
                    let len = 1 + rng.below(4) as usize;
                    let ids: Vec<u32> = (0..len)
                        .map(|_| rng.below(LADDER_ASSUMPTIONS as u64) as u32)
                        .collect();
                    (Env::from_ids(ids), rng.range_f64(0.05, 1.0))
                })
                .collect()
        })
        .collect()
}

fn ladder_engine() -> FuzzyAtms {
    let mut atms = FuzzyAtms::new();
    for i in 0..LADDER_ASSUMPTIONS {
        atms.add_assumption(format!("a{i}"));
    }
    atms
}

/// Replays a ladder querying the *incremental* path after every install.
fn run_ladder_incremental(atms: &mut FuzzyAtms, ladder: &[(Env, f64)]) -> usize {
    atms.reset();
    let mut total = 0;
    for (env, degree) in ladder {
        atms.add_nogood(env.clone(), *degree);
        total += atms.ranked_diagnoses(2, 64).len();
    }
    total
}

/// Replays a ladder re-enumerating the HS-tree after every install.
fn run_ladder_rebuild(atms: &mut FuzzyAtms, ladder: &[(Env, f64)]) -> usize {
    atms.reset();
    let mut total = 0;
    for (env, degree) in ladder {
        atms.add_nogood(env.clone(), *degree);
        total += atms.ranked_diagnoses_oracle(2, 64).len();
    }
    total
}

/// One probing workload: a compiled model plus faulty-board readings.
struct Workload {
    label: &'static str,
    diagnoser: Diagnoser,
    boards: Vec<Vec<FuzzyInterval>>,
}

/// The paper's three-stage amplifier with graded probe costs (deep
/// internal nodes need the probe station, the output connector is
/// cheap) and its three §8 defect boards.
fn amp_workload() -> Workload {
    let mut ts = three_stage(0.02);
    ts.test_points[0].cost = 3.0; // V1: deep internal node
    ts.test_points[1].cost = 2.0; // V2
    ts.test_points[2].cost = 1.0; // Vs: the output connector
    let diagnoser = Diagnoser::from_netlist(
        &ts.netlist,
        ts.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .expect("amplifier solves");
    let nets = [ts.v1, ts.v2, ts.vs];
    let faulty: Vec<Netlist> = vec![
        inject_faults(&ts.netlist, &[(ts.r2, Fault::Short)]).expect("fault injects"),
        inject_faults(&ts.netlist, &[(ts.t2, Fault::Param(40.0))]).expect("fault injects"),
        inject_faults(&ts.netlist, &[(ts.r3, Fault::Open)]).expect("fault injects"),
    ];
    let boards = faulty
        .iter()
        .map(|board| measure_all(board, &nets, MEAS_IMPRECISION).expect("board solves"))
        .collect();
    Workload {
        label: "three_stage",
        diagnoser,
        boards,
    }
}

/// A 16-stage gain cascade with seeded single- and double-fault boards:
/// long probe sequences over many test points, so every run exercises
/// the planner over a wide, slowly shrinking frontier.
fn cascade_workload() -> Workload {
    let c = cascade(CASCADE_STAGES, 1.2, 0.03);
    let diagnoser = Diagnoser::from_netlist(
        &c.netlist,
        c.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .expect("cascade solves");
    let mut rng = SplitMix64::new(0xCA5C_ADE5);
    let mut boards = Vec::new();
    for i in 0..4 {
        let a = rng.below(CASCADE_STAGES as u64) as usize;
        let mut faults = vec![(c.amps[a], Fault::ParamFactor(rng.range_f64(0.5, 0.7)))];
        if i % 2 == 1 {
            // Every other board carries a second weak stage: these never
            // isolate to a single component, so the loop probes the full
            // ladder — the worst-case planning load.
            let b = (a + 1 + rng.below((CASCADE_STAGES - 1) as u64) as usize) % CASCADE_STAGES;
            faults.push((c.amps[b], Fault::ParamFactor(rng.range_f64(1.4, 1.8))));
        }
        let board = inject_faults(&c.netlist, &faults).expect("fault injects");
        boards.push(measure_all(&board, &c.stages, MEAS_IMPRECISION).expect("board solves"));
    }
    Workload {
        label: "cascade16",
        diagnoser,
        boards,
    }
}

/// A wide probing ladder: many independent divider branches off one
/// source, one test point per branch. Every iteration re-scores every
/// unprobed point against every component — the widest planning
/// frontier of the three workloads, the regime the entropy memo, the
/// epoch-tagged candidate cache, and incremental maintenance are built
/// for. Faulty branches are seeded per board; the two suspects inside
/// a branch tie, so runs sweep the full ladder.
fn ladder_fleet() -> Workload {
    let mut nl = Netlist::new();
    let vin = nl.add_net("vin");
    nl.add_voltage_source("V", vin, Net::GROUND, 10.0)
        .expect("source adds");
    let mut points = Vec::new();
    let mut nets = Vec::new();
    let mut top = Vec::new();
    for i in 0..LADDER_BRANCHES {
        let mid = nl.add_net(format!("n{i}"));
        let ra = nl
            .add_resistor(format!("Ra{i}"), vin, mid, 1e3, 0.05)
            .expect("resistor adds");
        let rb = nl
            .add_resistor(format!("Rb{i}"), mid, Net::GROUND, 1e3, 0.05)
            .expect("resistor adds");
        points.push(TestPoint::new(mid, format!("P{i}"), vec![ra, rb]));
        nets.push(mid);
        top.push(ra);
    }
    let diagnoser =
        Diagnoser::from_netlist(&nl, points, DiagnoserConfig::default()).expect("ladder solves");
    let mut rng = SplitMix64::new(0x01AD_DE12);
    let boards = (0..LADDER_BOARDS)
        .map(|_| {
            let branch = rng.below(LADDER_BRANCHES as u64) as usize;
            let factor = rng.range_f64(1.8, 2.6);
            let board = inject_faults(&nl, &[(top[branch], Fault::ParamFactor(factor))])
                .expect("fault injects");
            measure_all(&board, &nets, MEAS_IMPRECISION).expect("board solves")
        })
        .collect();
    Workload {
        label: "ladder32",
        diagnoser,
        boards,
    }
}

/// Replicates the private isolation criterion of the probe loop on an
/// already fetched candidate list (public data only).
fn isolated_in(cands: &[Candidate]) -> bool {
    match cands {
        [] => false,
        [only] => only.members.len() == 1,
        [first, second, ..] => first.members.len() == 1 && first.degree > second.degree + 1e-9,
    }
}

/// Captures the session states a fast probe run actually passes
/// through: one clone per planning step (capped per trajectory to bound
/// memory). Timing `recommend` plus the isolation-check candidate query
/// over these states measures exactly the work the fast path replaces,
/// with the wave propagation — identical on both paths — factored out.
fn planning_trajectories(w: &Workload) -> Vec<(Policy, Vec<Session<'_>>)> {
    let mut out = Vec::new();
    for readings in &w.boards {
        for policy in [Policy::FuzzyEntropy, Policy::Probabilistic] {
            let mut session = w.diagnoser.session();
            let mut memo = EntropyMemo::new();
            let mut states = Vec::new();
            loop {
                if states.len() < STATES_PER_TRAJECTORY {
                    states.push(session.clone());
                }
                let choices = recommend_with_memo(&session, policy, 0.05, 1, &mut memo);
                let Some(choice) = choices.first().cloned() else {
                    break;
                };
                session
                    .measure_point(choice.point, readings[choice.point])
                    .expect("measurement lands");
                session.propagate();
                let cands =
                    session.candidates(CANDIDATE_BUDGET.max_size, CANDIDATE_BUDGET.max_count);
                if isolated_in(&cands) {
                    break;
                }
            }
            out.push((policy, states));
        }
    }
    out
}

/// One pass of fast planning over captured trajectories: a fresh memo
/// per trajectory (as `probe_until_isolated` holds one per run), then
/// `recommend_with_memo` plus the cached isolation-check query on every
/// state.
fn plan_fast(trajectories: &[(Policy, Vec<Session<'_>>)]) -> usize {
    let mut total = 0usize;
    for (policy, states) in trajectories {
        let mut memo = EntropyMemo::new();
        for session in states {
            total += recommend_with_memo(session, *policy, 0.05, 1, &mut memo).len();
            total += session
                .candidates(CANDIDATE_BUDGET.max_size, CANDIDATE_BUDGET.max_count)
                .len();
        }
    }
    total
}

/// One pass of oracle planning over the same trajectories:
/// `recommend_oracle` plus the uncached, re-enumerated isolation-check
/// query on every state — the pre-optimization per-iteration work.
fn plan_oracle(trajectories: &[(Policy, Vec<Session<'_>>)]) -> usize {
    let mut total = 0usize;
    for (policy, states) in trajectories {
        for session in states {
            total += recommend_oracle(session, *policy, 0.05).len();
            total += session
                .candidates_uncached(CANDIDATE_BUDGET.max_size, CANDIDATE_BUDGET.max_count)
                .len();
        }
    }
    total
}

/// Runs every (board, policy) probe loop of a workload on the fast path.
fn run_fast(w: &Workload, threads: usize) -> Vec<ProbeRun> {
    let mut out = Vec::new();
    for readings in &w.boards {
        for policy in [Policy::FuzzyEntropy, Policy::Probabilistic] {
            let mut session = w.diagnoser.session();
            out.push(
                probe_until_isolated_with(&mut session, policy, 0.05, &|i| readings[i], threads)
                    .expect("probing succeeds"),
            );
        }
    }
    out
}

/// Runs every (board, policy) probe loop on the retained oracle path.
fn run_oracle(w: &Workload) -> Vec<ProbeRun> {
    let mut out = Vec::new();
    for readings in &w.boards {
        for policy in [Policy::FuzzyEntropy, Policy::Probabilistic] {
            let mut session = w.diagnoser.session();
            out.push(
                probe_until_isolated_oracle(&mut session, policy, 0.05, &|i| readings[i])
                    .expect("probing succeeds"),
            );
        }
    }
    out
}

fn main() {
    // ----- gate 1: incremental candidates == batch oracle, every step --
    let ladders = make_ladders();
    let mut atms = ladder_engine();
    let mut checked = 0usize;
    for ladder in &ladders {
        atms.reset();
        for (env, degree) in ladder {
            atms.add_nogood(env.clone(), *degree);
            // A max_count neither path can saturate, so both return the
            // full ranked antichain of size ≤ 2.
            let incremental = atms.ranked_diagnoses(2, 4096);
            let oracle = atms.ranked_diagnoses_oracle(2, 4096);
            assert_eq!(
                format!("{incremental:?}"),
                format!("{oracle:?}"),
                "candidate divergence after install {checked}"
            );
            checked += 1;
        }
    }
    println!("candidate gate passed: {checked} installs, incremental == rebuild at every step");

    // ----- gate 2: fast probe runs == oracle probe runs ----------------
    let amp = amp_workload();
    let casc = cascade_workload();
    let ladder = ladder_fleet();
    let mut any_isolated = false;
    for w in [&amp, &casc, &ladder] {
        let fast = run_fast(w, 1);
        let oracle = run_oracle(w);
        assert_eq!(
            format!("{fast:?}"),
            format!("{oracle:?}"),
            "{}: fast probe loop diverged from oracle",
            w.label
        );
        any_isolated |= fast.iter().any(|r| r.isolated);
    }
    assert!(any_isolated, "workloads must isolate some boards");
    println!("probe-run gate passed: fast == oracle on three_stage, cascade16, ladder32");

    // ----- gate 3: thread-count byte-identity --------------------------
    // recommend() on a mid-run session, and whole runs through
    // probe_batch / probe_batch_lanes.
    {
        let readings = &casc.boards[1];
        let mut session = casc.diagnoser.session();
        for idx in [0usize, 5] {
            session
                .measure_point(idx, readings[idx])
                .expect("measurement lands");
            session.propagate();
        }
        for policy in [Policy::FuzzyEntropy, Policy::Probabilistic] {
            let solo = recommend_with(&session, policy, 0.05, 1);
            for threads in [2, 4, 8] {
                let multi = recommend_with(&session, policy, 0.05, threads);
                assert_eq!(
                    format!("{solo:?}"),
                    format!("{multi:?}"),
                    "recommend diverged at {threads} threads ({policy})"
                );
            }
        }
        let serial = probe_batch(&casc.diagnoser, &casc.boards, Policy::FuzzyEntropy, 0.05, 1)
            .expect("batch probes");
        for threads in [2, 4, 8] {
            let parallel = probe_batch(
                &casc.diagnoser,
                &casc.boards,
                Policy::FuzzyEntropy,
                0.05,
                threads,
            )
            .expect("batch probes");
            assert_eq!(
                format!("{serial:?}"),
                format!("{parallel:?}"),
                "probe_batch diverged at {threads} threads"
            );
        }
        let laned = probe_batch_lanes(
            &casc.diagnoser,
            &casc.boards,
            Policy::FuzzyEntropy,
            0.05,
            2,
            3,
        )
        .expect("lane probes");
        assert_eq!(
            format!("{serial:?}"),
            format!("{laned:?}"),
            "probe_batch_lanes diverged from serial"
        );
    }
    println!(
        "determinism gate passed: recommend/probe_batch byte-identical across 1/2/4/8 threads\n"
    );

    // ----- timing: candidate maintenance -------------------------------
    let h = Harness::new("exp_strategy").with_budget(Duration::from_millis(500));
    let queries = (LADDERS * INSTALLS_PER_LADDER) as f64;
    let mut inc_atms = ladder_engine();
    let incremental_ns = h.bench("candidates/incremental", || {
        let mut total = 0;
        for ladder in &ladders {
            total += run_ladder_incremental(&mut inc_atms, ladder);
        }
        black_box(total)
    }) / queries;
    let mut reb_atms = ladder_engine();
    let rebuild_ns = h.bench("candidates/rebuild", || {
        let mut total = 0;
        for ladder in &ladders {
            total += run_ladder_rebuild(&mut reb_atms, ladder);
        }
        black_box(total)
    }) / queries;
    let candidate_speedup = rebuild_ns / incremental_ns;

    // ----- timing: the full probe-until-isolated loop ------------------
    // End-to-end wall clock is dominated by wave propagation through the
    // constraint network, identical work on both paths (DESIGN.md
    // §10–11), so these rows are no-regression bounds; the ≥3× claim is
    // gated on the planning component below, where the two paths
    // actually differ.
    let hp = Harness::new("exp_strategy").with_budget(Duration::from_secs(2));
    let mut rows = Vec::new();
    for w in [&amp, &casc, &ladder] {
        let runs = (w.boards.len() * 2) as f64;
        let fast_ns = hp.bench(&format!("probe_loop/{}/fast", w.label), || {
            black_box(run_fast(w, 1))
        }) / runs;
        let oracle_ns = hp.bench(&format!("probe_loop/{}/oracle", w.label), || {
            black_box(run_oracle(w))
        }) / runs;
        rows.push((w.label, runs, fast_ns, oracle_ns, oracle_ns / fast_ns));
    }

    // ----- timing: the planning component of those same loops ----------
    // Every state each probe run passes through, with the shared
    // propagation factored out (see `planning_trajectories`).
    let trajectories: Vec<(Policy, Vec<Session<'_>>)> = [&amp, &casc, &ladder]
        .into_iter()
        .flat_map(planning_trajectories)
        .collect();
    let states: usize = trajectories.iter().map(|(_, s)| s.len()).sum();
    let plan_fast_ns =
        hp.bench("planning/fast", || black_box(plan_fast(&trajectories))) / states as f64;
    let plan_oracle_ns =
        hp.bench("planning/oracle", || black_box(plan_oracle(&trajectories))) / states as f64;
    let planning_speedup = plan_oracle_ns / plan_fast_ns;

    // ----- timing: parallel fleet probing ------------------------------
    let boards = ladder.boards.len() as f64;
    let serial_ns = hp.bench("probe_batch/serial", || {
        black_box(
            probe_batch(
                &ladder.diagnoser,
                &ladder.boards,
                Policy::FuzzyEntropy,
                0.05,
                1,
            )
            .expect("batch probes"),
        )
    }) / boards;
    let parallel_ns = hp.bench("probe_batch/parallel", || {
        black_box(
            probe_batch(
                &ladder.diagnoser,
                &ladder.boards,
                Policy::FuzzyEntropy,
                0.05,
                THREADS,
            )
            .expect("batch probes"),
        )
    }) / boards;
    let parallel_speedup = serial_ns / parallel_ns;

    // Counter deltas over one untimed fast pass (zeros without `obs`):
    // the planner counters prove the fast paths actually served the run.
    let before = flames_obs::MetricsSnapshot::capture();
    black_box(run_fast(&amp, 1));
    black_box(run_fast(&casc, 1));
    black_box(run_fast(&ladder, 1));
    let counters = flames_obs::MetricsSnapshot::capture().delta_since(&before);

    let probe_rows: Vec<String> = rows
        .iter()
        .map(|(label, runs, fast, oracle, speedup)| {
            format!(
                concat!(
                    "    \"{label}\": {{\n",
                    "      \"runs\": {runs},\n",
                    "      \"fast_ns_per_run\": {fast:.0},\n",
                    "      \"oracle_ns_per_run\": {oracle:.0},\n",
                    "      \"speedup\": {speedup:.2}\n",
                    "    }}"
                ),
                label = label,
                runs = runs,
                fast = fast,
                oracle = oracle,
                speedup = speedup,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"exp_strategy\",\n",
            "  \"candidates\": {{\n",
            "    \"ladders\": {ladders},\n",
            "    \"installs_per_ladder\": {installs},\n",
            "    \"assumptions\": {assumptions},\n",
            "    \"incremental_ns_per_query\": {inc:.0},\n",
            "    \"rebuild_ns_per_query\": {reb:.0},\n",
            "    \"speedup\": {cspeed:.2}\n",
            "  }},\n",
            "  \"probe_loop\": {{\n",
            "    \"circuits\": \"three_stage(0.02), cascade({stages}, 1.2, 0.03), \
             ladder({branches})\",\n",
            "    \"policies\": \"fuzzy-entropy, probabilistic\",\n",
            "    \"byte_identical\": true,\n",
            "{probe_rows}\n",
            "  }},\n",
            "  \"planning\": {{\n",
            "    \"states\": {states},\n",
            "    \"fast_ns_per_state\": {pfast:.0},\n",
            "    \"oracle_ns_per_state\": {poracle:.0},\n",
            "    \"speedup\": {pspeed:.2}\n",
            "  }},\n",
            "  \"parallel\": {{\n",
            "    \"threads\": {threads},\n",
            "    \"boards\": {boards},\n",
            "    \"serial_ns_per_board\": {serial:.0},\n",
            "    \"parallel_ns_per_board\": {parallel:.0},\n",
            "    \"speedup\": {tspeed:.2}\n",
            "  }},\n",
            "  \"counters\": {counters}\n",
            "}}\n"
        ),
        ladders = LADDERS,
        installs = INSTALLS_PER_LADDER,
        assumptions = LADDER_ASSUMPTIONS,
        inc = incremental_ns,
        reb = rebuild_ns,
        cspeed = candidate_speedup,
        stages = CASCADE_STAGES,
        branches = LADDER_BRANCHES,
        probe_rows = probe_rows.join(",\n"),
        states = states,
        pfast = plan_fast_ns,
        poracle = plan_oracle_ns,
        pspeed = planning_speedup,
        threads = THREADS,
        boards = ladder.boards.len(),
        serial = serial_ns,
        parallel = parallel_ns,
        tspeed = parallel_speedup,
        counters = counters.to_json(1),
    );
    std::fs::write("BENCH_strategy.json", &json).expect("write BENCH_strategy.json");
    println!("{json}");

    assert!(
        candidate_speedup >= 3.0,
        "incremental candidate maintenance must be at least 3x the rebuild path, \
         measured {candidate_speedup:.2}x"
    );
    assert!(
        planning_speedup >= 3.0,
        "fast planning must be at least 3x oracle planning over the probe-loop \
         trajectories, measured {planning_speedup:.2}x"
    );
    for (label, _, _, _, speedup) in &rows {
        assert!(
            *speedup >= 0.9,
            "{label}: the fast probe loop must not regress the propagation-bound \
             full loop, measured {speedup:.2}x"
        );
    }
    assert!(
        parallel_speedup >= 0.8,
        "parallel fleet probing must not regress serial throughput, \
         measured {parallel_speedup:.2}x"
    );
}
