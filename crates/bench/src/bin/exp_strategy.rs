//! **E5 — §8**: best-test strategies.
//!
//! The paper claims FLAMES "recommends at any point the next best test to
//! make … minimizing the expected total cost of the tests". This
//! experiment compares three probing policies on the three-stage
//! amplifier and on generated gain cascades:
//!
//! * `fuzzy-entropy` — the paper's §8 proposal (expected fuzzy entropy of
//!   the faultiness estimations);
//! * `probabilistic` — the GDE-style baseline (expected Shannon entropy
//!   of the candidate split);
//! * `fixed-order` — naive probing in declaration order.
//!
//! Reported per defect and policy: the probes made, their total cost, and
//! whether the fault was isolated to a single component.
//!
//! Run with `cargo run -p flames-bench --bin exp_strategy`.

use flames_bench::{header, row};
use flames_circuit::circuits::{cascade, three_stage};
use flames_circuit::fault::inject_faults;
use flames_circuit::predict::measure_all;
use flames_circuit::{Fault, Net, Netlist};
use flames_core::strategy::{probe_until_isolated, Policy, ProbeRun};
use flames_core::{Diagnoser, DiagnoserConfig};
use flames_fuzzy::FuzzyInterval;

const MEAS_IMPRECISION: f64 = 0.02;

fn run_policies(diagnoser: &Diagnoser, board: &Netlist, nets: &[Net], label: &str) {
    let readings: Vec<FuzzyInterval> =
        measure_all(board, nets, MEAS_IMPRECISION).expect("faulty board still solves");
    let w = [24, 15, 34, 7, 9, 24];
    for policy in [
        Policy::FuzzyEntropy,
        Policy::Probabilistic,
        Policy::FixedOrder,
    ] {
        let mut session = diagnoser.session();
        let ProbeRun {
            probes,
            cost,
            top_candidate,
            isolated,
        } = probe_until_isolated(&mut session, policy, 0.05, &|i| readings[i])
            .expect("probing succeeds");
        row(
            &[
                label,
                &policy.to_string(),
                &probes.join(" -> "),
                &format!("{cost:.1}"),
                &format!("{isolated}"),
                &format!("[{}]", top_candidate.join(", ")),
            ],
            &w,
        );
    }
}

fn main() {
    header("E5 / §8 — best-test strategy: probes to isolation, by policy");

    let w = [24, 15, 34, 7, 9, 24];
    row(
        &[
            "defect",
            "policy",
            "probes",
            "cost",
            "isolated",
            "top candidate",
        ],
        &w,
    );

    // --- Three-stage amplifier, the paper's vehicle. Probing deeper
    //     points is costlier (the output connector is cheap; internal
    //     nodes need the probe station).
    let mut ts = three_stage(0.02);
    ts.test_points[0].cost = 3.0; // V1: deep internal node
    ts.test_points[1].cost = 2.0; // V2
    ts.test_points[2].cost = 1.0; // Vs: the output connector
    let diagnoser = Diagnoser::from_netlist(
        &ts.netlist,
        ts.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .expect("amplifier solves");
    let nets = [ts.v1, ts.v2, ts.vs];

    let amp_rows: Vec<(&str, Netlist)> = vec![
        (
            "amp: short R2",
            inject_faults(&ts.netlist, &[(ts.r2, Fault::Short)]).expect("fault injects"),
        ),
        (
            "amp: beta2 low (40)",
            inject_faults(&ts.netlist, &[(ts.t2, Fault::Param(40.0))]).expect("fault injects"),
        ),
        (
            "amp: open R3",
            inject_faults(&ts.netlist, &[(ts.r3, Fault::Open)]).expect("fault injects"),
        ),
    ];
    for (label, board) in &amp_rows {
        run_policies(&diagnoser, board, &nets, label);
    }

    // --- An 8-stage cascade with one weak stage: binary-search-like
    //     probing beats fixed-order scanning.
    let c = cascade(8, 1.3, 0.03);
    let diagnoser = Diagnoser::from_netlist(
        &c.netlist,
        c.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .expect("cascade solves");
    for faulty_stage in [2usize, 5] {
        let board = inject_faults(
            &c.netlist,
            &[(c.amps[faulty_stage], Fault::ParamFactor(0.6))],
        )
        .expect("fault injects");
        let label = format!("cascade8: amp_{} weak", faulty_stage + 1);
        run_policies(&diagnoser, &board, &c.stages, &label);
    }

    println!();
    println!(
        "shape check: entropy-guided policies reach isolation in fewer / cheaper \
         probes than fixed-order scanning, and the fuzzy policy matches the \
         probabilistic one without its prior-probability machinery (§8)."
    );
}
