//! Conflict-recognition experiment: the allocation-free closed-form
//! trapezoid `Dc` kernel and board-lane propagation, measured against
//! the paths they replace.
//!
//! Two sections:
//!
//! * **kernel** — `Consistency::between` (closed-form, stack-only)
//!   versus the retained PWL fallback (`to_pwl`, polyline intersection
//!   and area — the pre-refactor cost per comparison) on a fixed fleet
//!   of random trapezoid pairs. Gate: closed-form ≥ 3× PWL.
//! * **lanes** — `diagnose_batch_lanes` (one schedule traversal per
//!   wave amortised over up to 64 warm sessions) versus the per-board
//!   `diagnose_batch` on the paper's Fig. 6 three-stage amplifier, one
//!   thread each so lane amortisation is the only variable. The lane
//!   contract is *byte-identical reports at no throughput cost*: with
//!   per-board constraint applications pinned byte-for-byte to the solo
//!   order, both paths do the same numeric work and the shared
//!   traversal is ~1% of runtime (see DESIGN.md §10 for the
//!   measurement), so the gate is a no-regression bound, not a speedup
//!   claim.
//!
//! Before any timing, the gates assert the fast paths are byte-exact:
//! every kernel pair must agree with the PWL fallback to 1e-12 and in
//! direction, and the lane batch must reproduce the per-board reports
//! byte-identically. Writes `BENCH_dc.json` in the current directory
//! and exits non-zero if a gate fails.

use flames_bench::harness::Harness;
use flames_bench::rng::SplitMix64;
use flames_circuit::circuits::{three_stage, ThreeStage};
use flames_circuit::fault::inject_faults;
use flames_circuit::predict::measure;
use flames_circuit::{CompId, Fault};
use flames_core::{diagnose_batch, diagnose_batch_lanes, Board, Diagnoser, DiagnoserConfig};
use flames_fuzzy::{Consistency, FuzzyInterval};
use std::hint::black_box;
use std::time::Duration;

const PAIRS: usize = 256;
const BOARDS: usize = 48;
const LANE_WIDTH: usize = 64;
const MEASURE_IMPRECISION: f64 = 0.02;

/// Random overlap-rich trapezoid pairs: plain shapes, zero-spread
/// flanks, crisp intervals and points, shifted near-copies — the same
/// corner mix as the property suite, so the timed workload covers every
/// kernel branch.
fn make_pairs(n: usize) -> Vec<(FuzzyInterval, FuzzyInterval)> {
    let mut rng = SplitMix64::new(0xDCBE_2026);
    let random = |rng: &mut SplitMix64| {
        let m1 = rng.range_f64(-50.0, 50.0);
        let m2 = m1 + rng.range_f64(0.0, 20.0);
        FuzzyInterval::new(m1, m2, rng.range_f64(0.0, 5.0), rng.range_f64(0.0, 5.0))
            .expect("valid trapezoid")
    };
    (0..n)
        .map(|i| {
            let vm = match i % 4 {
                0 => FuzzyInterval::crisp(SplitMix64::new(i as u64).range_f64(-50.0, 50.0)),
                1 => {
                    let t = random(&mut rng);
                    FuzzyInterval::new(t.core_lo(), t.core_hi(), 0.0, t.spread_right())
                        .expect("valid trapezoid")
                }
                _ => random(&mut rng),
            };
            let vn = if i % 3 == 0 {
                // Shifted near-copy: dense ramp–ramp crossings.
                let shift = rng.range_f64(-3.0, 3.0);
                FuzzyInterval::new(
                    vm.core_lo() + shift,
                    vm.core_hi() + shift,
                    vm.spread_left() + 0.5,
                    vm.spread_right() + 0.5,
                )
                .expect("valid trapezoid")
            } else {
                random(&mut rng)
            };
            (vm, vn)
        })
        .collect()
}

/// A mostly-healthy fleet (every twelfth board has one drifted
/// resistor) probing all three of the paper's test points — the
/// steady-state production-test regime board lanes are built for.
/// Healthy readings get a small per-board jitter inside the measurement
/// imprecision, so boards are realistic near-copies rather than byte
/// duplicates.
fn make_boards(ts: &ThreeStage, n: usize) -> Vec<Board> {
    let drift_sites: [CompId; 4] = [ts.r2, ts.r4, ts.r5, ts.r6];
    let mut rng = SplitMix64::new(0xB0A2D5);
    (0..n)
        .map(|i| {
            let board_netlist = if i % 12 == 0 {
                let comp = drift_sites[(i / 12) % drift_sites.len()];
                let factor = rng.range_f64(0.75, 1.35);
                inject_faults(&ts.netlist, &[(comp, Fault::ParamFactor(factor))])
                    .expect("drift injection")
            } else {
                ts.netlist.clone()
            };
            ts.test_points
                .iter()
                .enumerate()
                .map(|(idx, tp)| {
                    let jitter =
                        FuzzyInterval::crisp(rng.range_f64(-0.2, 0.2) * MEASURE_IMPRECISION);
                    let reading = measure(&board_netlist, tp.net, MEASURE_IMPRECISION)
                        .expect("board solves")
                        + jitter;
                    (idx, reading)
                })
                .collect()
        })
        .collect()
}

fn main() {
    // ----- kernel: closed-form vs PWL --------------------------------
    let pairs = make_pairs(PAIRS);

    // Exactness gate before timing: the two paths integrate the same
    // piecewise-linear minimum, so they must agree to FP noise.
    for (i, (vm, vn)) in pairs.iter().enumerate() {
        let fast = Consistency::between(vm, vn);
        let slow = Consistency::between_pwl(&vm.to_pwl(), &vn.to_pwl());
        assert!(
            (fast.degree() - slow.degree()).abs() <= 1e-12,
            "pair {i}: closed-form {} != pwl {}",
            fast.degree(),
            slow.degree()
        );
        assert_eq!(fast.direction(), slow.direction(), "pair {i}: direction");
    }
    println!("exactness gate passed: {PAIRS} pairs agree to 1e-12\n");

    let h = Harness::new("exp_dc").with_budget(Duration::from_millis(500));
    let closed_ns = h.bench("dc_closed_form", || {
        let mut acc = 0.0;
        for (vm, vn) in &pairs {
            acc += Consistency::between(black_box(vm), black_box(vn)).degree();
        }
        black_box(acc)
    }) / PAIRS as f64;
    let pwl_ns = h.bench("dc_pwl_fallback", || {
        let mut acc = 0.0;
        for (vm, vn) in &pairs {
            let (vm, vn) = (black_box(vm), black_box(vn));
            acc += Consistency::between_pwl(&vm.to_pwl(), &vn.to_pwl()).degree();
        }
        black_box(acc)
    }) / PAIRS as f64;
    let kernel_speedup = pwl_ns / closed_ns;

    // ----- lanes: joint vs per-board propagation ---------------------
    let ts = three_stage(0.05);
    let diagnoser = Diagnoser::from_netlist(
        &ts.netlist,
        ts.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .expect("three-stage model compiles");
    let boards = make_boards(&ts, BOARDS);

    let per_board = diagnose_batch(&diagnoser, &boards, 1).expect("batch runs");
    assert!(
        per_board.iter().any(|r| !r.nogoods.is_empty()),
        "workload must exercise faulty boards"
    );
    let reference = format!("{per_board:?}");
    for lane_width in [1, 7, LANE_WIDTH] {
        let laned = diagnose_batch_lanes(&diagnoser, &boards, 1, lane_width).expect("lanes run");
        assert_eq!(
            format!("{laned:?}"),
            reference,
            "lane-{lane_width} batch must be byte-identical to per-board"
        );
    }
    println!("lane determinism gate passed: lanes(1,7,{LANE_WIDTH}) == per-board\n");

    let hl = Harness::new("exp_dc").with_budget(Duration::from_secs(3));
    let per_board_ns = hl.bench("batch_per_board", || {
        black_box(diagnose_batch(&diagnoser, &boards, 1).expect("batch runs"))
    }) / BOARDS as f64;
    let lane_ns = hl.bench("batch_lanes", || {
        black_box(diagnose_batch_lanes(&diagnoser, &boards, 1, LANE_WIDTH).expect("lanes run"))
    }) / BOARDS as f64;
    let lane_speedup = per_board_ns / lane_ns;

    // Counter deltas over one untimed lane pass (zeros without `obs`):
    // the kernel counters prove the fast path actually served the run.
    let before = flames_obs::MetricsSnapshot::capture();
    black_box(diagnose_batch_lanes(&diagnoser, &boards, 1, LANE_WIDTH).expect("lanes run"));
    let counters = flames_obs::MetricsSnapshot::capture().delta_since(&before);

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"exp_dc\",\n",
            "  \"kernel\": {{\n",
            "    \"pairs\": {pairs},\n",
            "    \"closed_form_ns_per_op\": {closed:.1},\n",
            "    \"pwl_ns_per_op\": {pwl:.1},\n",
            "    \"speedup\": {kspeed:.2}\n",
            "  }},\n",
            "  \"lanes\": {{\n",
            "    \"circuit\": \"three_stage(0.05)\",\n",
            "    \"boards\": {boards},\n",
            "    \"lane_width\": {width},\n",
            "    \"byte_identical\": true,\n",
            "    \"per_board_ns_per_board\": {pb:.0},\n",
            "    \"lane_ns_per_board\": {ln:.0},\n",
            "    \"lane_boards_per_sec\": {rate:.1},\n",
            "    \"speedup\": {lspeed:.2}\n",
            "  }},\n",
            "  \"counters\": {counters}\n",
            "}}\n"
        ),
        pairs = PAIRS,
        closed = closed_ns,
        pwl = pwl_ns,
        kspeed = kernel_speedup,
        boards = BOARDS,
        width = LANE_WIDTH,
        pb = per_board_ns,
        ln = lane_ns,
        rate = 1e9 / lane_ns,
        lspeed = lane_speedup,
        counters = counters.to_json(1),
    );
    std::fs::write("BENCH_dc.json", &json).expect("write BENCH_dc.json");
    println!("\n{json}");

    assert!(
        kernel_speedup >= 3.0,
        "closed-form Dc must be at least 3x the PWL fallback, measured {kernel_speedup:.2}x"
    );
    assert!(
        lane_speedup >= 0.9,
        "lane batches must not regress per-board throughput, measured {lane_speedup:.2}x"
    );
}
