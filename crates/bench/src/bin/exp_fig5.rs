//! **E3 — Fig. 5**: candidate generation on the diode + two resistors
//! network, crisp (DIANA-style) vs fuzzy.
//!
//! The paper's worked example: the diode model bounds every branch
//! current by 100 µA; measuring `Vr1 = 1.05 V` and `Vr2 = 2 V` derives
//! `Ir1 = 105 µA` and `Ir2 = 200 µA` through Ohm's law, raising
//! `Nogood{r1, d1}` and `Nogood{r2, d1}` and finally
//! `CANDIDATES: [d1] or [r1, r2]`.
//!
//! With the fuzzy condition `[-1, 100, 0, 10]` µA the two nogoods come
//! out *graded* — 0.5 and 1 — which orders the candidates and lets the
//! diode's fault modes (open/short only) shift suspicion onto `r2`.
//!
//! Run with `cargo run -p flames-bench --bin exp_fig5`.

use flames_atms::hitting::minimal_hitting_sets;
use flames_atms::{Env, FuzzyAtms};
use flames_bench::{header, row};
use flames_circuit::circuits::diode_current_spec_micro_amps;
use flames_core::fault_model::standard_modes;

fn main() {
    header("E3 / Fig. 5 — diode network: crisp vs fuzzy candidates");

    // Measurements → currents through Ohm's law (10 kΩ resistors).
    let ir1_micro = 1.05 / 10_000.0 * 1e6; // 105 µA {r1}
    let ir2_micro = 2.0 / 10_000.0 * 1e6; // 200 µA {r2}
    println!("measurements: Vr1 = 1.05 V -> Ir1 = {ir1_micro:.0} µA {{r1}}");
    println!("              Vr2 = 2.00 V -> Ir2 = {ir2_micro:.0} µA {{r2}}");
    println!("diode model:  Id ≤ 100 µA {{d1}} (propagated to both branches via KCL)");
    println!();

    // --- Crisp reading: the condition is the sharp bound Id ≤ 100 µA. ---
    println!("crisp intervals (DIANA-style):");
    let violated1 = ir1_micro > 100.0;
    let violated2 = ir2_micro > 100.0;
    println!("  Ir1 = 105 µA vs ≤100 µA: conflict = {violated1} -> Nogood{{r1, d1}}");
    println!("  Ir2 = 200 µA vs ≤100 µA: conflict = {violated2} -> Nogood{{r2, d1}}");
    let d1 = 0u32;
    let r1 = 1u32;
    let r2 = 2u32;
    let nogoods = vec![Env::from_ids([r1, d1]), Env::from_ids([r2, d1])];
    let mut hs = minimal_hitting_sets(&nogoods, usize::MAX, 100);
    hs.sort_by_key(Env::len);
    let name = |e: &Env| -> String {
        let names: Vec<&str> = e
            .iter()
            .map(|a| match a.index() {
                0 => "d1",
                1 => "r1",
                _ => "r2",
            })
            .collect();
        format!("[{}]", names.join(", "))
    };
    let rendered: Vec<String> = hs.iter().map(name).collect();
    println!(
        "  CANDIDATES: {} (unranked — every candidate ties)",
        rendered.join(" or ")
    );
    println!();

    // --- Fuzzy reading: condition [-1, 100, 0, 10] µA grades the violations. ---
    println!("fuzzy intervals (FLAMES):");
    let spec = diode_current_spec_micro_amps();
    let mu1 = spec.membership(ir1_micro);
    let mu2 = spec.membership(ir2_micro);
    println!("  condition = [-1, 100, 0, 10] µA; µ(105) = {mu1:.2}, µ(200) = {mu2:.2}");
    let mut atms = FuzzyAtms::new();
    let d1 = atms.add_assumption("d1");
    let r1 = atms.add_assumption("r1");
    let r2 = atms.add_assumption("r2");
    atms.add_nogood(Env::from_assumptions([r1, d1]), 1.0 - mu1);
    atms.add_nogood(Env::from_assumptions([r2, d1]), 1.0 - mu2);
    println!(
        "  Nogood{{r1, d1}} with degree {:.2} (paper: 0.5)",
        1.0 - mu1
    );
    println!("  Nogood{{r2, d1}} with degree {:.2} (paper: 1)", 1.0 - mu2);
    println!();
    println!("  ranked candidates (degree = weakest member suspicion):");
    let w = [16, 8];
    row(&["candidate", "degree"], &w);
    let names = ["d1", "r1", "r2"];
    for diag in atms.ranked_diagnoses(usize::MAX, 100) {
        let members: Vec<&str> = diag.env.iter().map(|a| names[a.index()]).collect();
        row(
            &[
                &format!("[{}]", members.join(", ")),
                &format!("{:.2}", diag.degree),
            ],
            &w,
        );
    }
    println!();

    // --- Fault-mode refinement: the paper's closing argument. ---
    println!("fault-mode refinement (§6.3):");
    let modes = standard_modes(0.05);
    // A diode only fails open or short; a 5 % overcurrent fits neither.
    // The resistor r2, however, must be *very low* to pass twice its
    // nominal current for the observed loop voltage: implied ratio ≈ 0.5.
    let nominal_current = 100e-6; // what 2 V across a healthy loop allows
    let observed_current = 200e-6;
    let implied_r2_ratio = nominal_current / observed_current; // ≈ 0.5
    let low = modes
        .iter()
        .find(|m| m.name() == "low")
        .expect("vocabulary");
    println!(
        "  r2 would have to be ~{:.0}% of nominal to explain 200 µA: \
         membership in mode 'low' = {:.2}",
        implied_r2_ratio * 100.0,
        low.membership(implied_r2_ratio)
    );
    println!(
        "  diode modes are open/short only — neither explains a 5 % overcurrent, \
         so the expert is driven to \"strongly suspect the resistance r2\"."
    );
}
