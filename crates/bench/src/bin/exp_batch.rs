//! Batch-serving experiment: the compile-once/serve-many split measured
//! end to end on the paper's Fig. 6 three-stage amplifier.
//!
//! A fleet of boards (healthy plus injected parametric drifts) is
//! diagnosed three ways against one shared [`flames_core::CompiledModel`]:
//!
//! * **cold, 1 thread** — a [`Diagnoser::cold_session`] per board: the
//!   pre-compile behaviour, re-deriving the constraint schedule, the
//!   assumption vocabulary, and every environment per session;
//! * **warm pool, 1 thread** — a [`flames_core::SessionPool`] recycling
//!   reset sessions, so steady-state boards pay no rebuild;
//! * **N threads** — [`flames_core::diagnose_batch`] over
//!   `std::thread::scope` workers, one pool per worker.
//!
//! Before any timing, the gate asserts the three paths produce
//! byte-identical reports (warm/batch determinism is the refactor's core
//! invariant). Writes `BENCH_batch.json` in the current directory and
//! exits non-zero if warm-pool throughput fails the ≥ 1.5× gate.

use flames_bench::harness::Harness;
use flames_bench::rng::SplitMix64;
use flames_circuit::circuits::{three_stage, ThreeStage};
use flames_circuit::fault::inject_faults;
use flames_circuit::predict::measure;
use flames_circuit::{CompId, Fault};
use flames_core::{diagnose_batch, Board, Diagnoser, DiagnoserConfig, Report, SessionPool};
use std::hint::black_box;
use std::time::Duration;

const BOARDS: usize = 24;
const MEASURE_IMPRECISION: f64 = 0.02;

/// A batch of boards: mostly healthy, every fourth with one resistor
/// drifted by a deterministic pseudo-random factor. Each board probes
/// all three of the paper's test points (V1, V2, Vs).
fn make_boards(ts: &ThreeStage, n: usize) -> Vec<Board> {
    let drift_sites: [CompId; 4] = [ts.r2, ts.r4, ts.r5, ts.r6];
    let mut rng = SplitMix64::new(0xB0A2D5);
    (0..n)
        .map(|i| {
            let board_netlist = if i % 4 == 0 {
                let comp = drift_sites[(i / 4) % drift_sites.len()];
                let factor = rng.range_f64(0.75, 1.35);
                inject_faults(&ts.netlist, &[(comp, Fault::ParamFactor(factor))])
                    .expect("drift injection")
            } else {
                ts.netlist.clone()
            };
            ts.test_points
                .iter()
                .enumerate()
                .map(|(idx, tp)| {
                    (
                        idx,
                        measure(&board_netlist, tp.net, MEASURE_IMPRECISION).expect("board solves"),
                    )
                })
                .collect()
        })
        .collect()
}

fn run_cold(diagnoser: &Diagnoser, boards: &[Board]) -> Vec<Report> {
    boards
        .iter()
        .map(|board| {
            let mut session = diagnoser.cold_session();
            for &(idx, value) in board {
                session.measure_point(idx, value).expect("valid point");
            }
            session.propagate();
            session.report()
        })
        .collect()
}

fn run_warm(pool: &mut SessionPool<'_>, boards: &[Board]) -> Vec<Report> {
    boards
        .iter()
        .map(|board| {
            let mut session = pool.acquire();
            for &(idx, value) in board {
                session.measure_point(idx, value).expect("valid point");
            }
            session.propagate();
            let report = session.report();
            pool.release(session);
            report
        })
        .collect()
}

struct Row {
    name: &'static str,
    threads: usize,
    ns_per_batch: f64,
}

impl Row {
    fn boards_per_sec(&self) -> f64 {
        BOARDS as f64 * 1e9 / self.ns_per_batch
    }
}

fn main() {
    let ts = three_stage(0.05);
    let diagnoser = Diagnoser::from_netlist(
        &ts.netlist,
        ts.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .expect("three-stage model compiles");
    let boards = make_boards(&ts, BOARDS);
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);

    // ----- determinism gates (before any timing is trusted) ----------
    // Ground truth: one fresh compiled session per board.
    let sequential: Vec<Report> = boards
        .iter()
        .map(|board| {
            let mut session = diagnoser.session();
            for &(idx, value) in board {
                session.measure_point(idx, value).expect("valid point");
            }
            session.propagate();
            session.report()
        })
        .collect();
    let reference = format!("{sequential:?}");
    assert!(
        sequential.iter().any(|r| !r.nogoods.is_empty()),
        "workload must exercise faulty boards"
    );
    assert_eq!(
        format!("{:?}", run_cold(&diagnoser, &boards)),
        reference,
        "legacy per-session rebuild must match the compiled path"
    );
    let mut pool = SessionPool::new(&diagnoser);
    assert_eq!(
        format!("{:?}", run_warm(&mut pool, &boards)),
        reference,
        "warm pooled sessions must match fresh sessions"
    );
    for t in [1, 2, threads] {
        assert_eq!(
            format!(
                "{:?}",
                diagnose_batch(&diagnoser, &boards, t).expect("batch runs")
            ),
            reference,
            "{t}-thread batch must be byte-identical to sequential"
        );
    }
    println!("determinism gates passed: cold == warm == batch(1,2,{threads}) == sequential\n");

    // ----- timing ----------------------------------------------------
    let h = Harness::new("exp_batch").with_budget(Duration::from_millis(500));
    let cold = Row {
        name: "cold_1_thread",
        threads: 1,
        ns_per_batch: h.bench("cold_1_thread", || black_box(run_cold(&diagnoser, &boards))),
    };
    // The pool persists across iterations: steady-state warm serving.
    let mut pool = SessionPool::new(&diagnoser);
    pool.warm(1);
    let warm = Row {
        name: "warm_pool_1_thread",
        threads: 1,
        ns_per_batch: h.bench("warm_pool_1_thread", || {
            black_box(run_warm(&mut pool, &boards))
        }),
    };
    let batch = Row {
        name: "batch_n_threads",
        threads,
        ns_per_batch: h.bench("batch_n_threads", || {
            black_box(diagnose_batch(&diagnoser, &boards, threads).expect("batch runs"))
        }),
    };

    let rows = [cold, warm, batch];
    let entries: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                concat!(
                    "    \"{name}\": {{\n",
                    "      \"threads\": {threads},\n",
                    "      \"ns_per_board\": {ns_board:.0},\n",
                    "      \"boards_per_sec\": {rate:.1}\n",
                    "    }}"
                ),
                name = row.name,
                threads = row.threads,
                ns_board = row.ns_per_batch / BOARDS as f64,
                rate = row.boards_per_sec(),
            )
        })
        .collect();
    let warm_speedup = rows[1].boards_per_sec() / rows[0].boards_per_sec();
    let parallel_scaling = rows[2].boards_per_sec() / rows[1].boards_per_sec();

    // Counter deltas over one untimed warm-pool pass of the fleet — the
    // live-observability column (all zeros when built without `obs`).
    let mut pool = SessionPool::new(&diagnoser);
    pool.warm(1);
    let before = flames_obs::MetricsSnapshot::capture();
    black_box(run_warm(&mut pool, &boards));
    let counters = flames_obs::MetricsSnapshot::capture().delta_since(&before);

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"exp_batch\",\n",
            "  \"circuit\": \"three_stage(0.05)\",\n",
            "  \"boards\": {boards},\n",
            "  \"byte_identical\": true,\n",
            "  \"rows\": {{\n{rows}\n  }},\n",
            "  \"counters\": {counters},\n",
            "  \"warm_vs_cold_speedup\": {warm:.2},\n",
            "  \"parallel_vs_warm_scaling\": {par:.2}\n",
            "}}\n"
        ),
        boards = BOARDS,
        rows = entries.join(",\n"),
        counters = counters.to_json(2),
        warm = warm_speedup,
        par = parallel_scaling,
    );
    std::fs::write("BENCH_batch.json", &json).expect("write BENCH_batch.json");
    println!("\n{json}");

    assert!(
        warm_speedup >= 1.5,
        "warm-pool serving must be at least 1.5x cold sessions, measured {warm_speedup:.2}x"
    );
}
