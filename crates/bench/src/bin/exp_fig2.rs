//! **E1 — Fig. 2**: crisp-interval vs fuzzy-interval propagation through
//! the amplifier branch circuit (gains 1/2/3, ±0.05 spreads).
//!
//! Regenerates every number printed in the paper's Fig. 2 and its
//! propagation table: the crisp-interval column, and the two fuzzy cases
//! (1) crisp input `Va = [2.95, 3.05, 0, 0]` and (2) fuzzy input
//! `Va = [3, 3, 0.05, 0.05]`.
//!
//! Run with `cargo run -p flames-bench --bin exp_fig2`.

use flames_bench::{header, row, tuple};
use flames_crisp::Interval;
use flames_fuzzy::FuzzyInterval;

fn main() {
    header("E1 / Fig. 2 — crisp vs fuzzy propagation (amplifier branch A→B; B→C; B→D)");

    // Crisp-interval (DIANA-style) propagation: the figure's bracketed column.
    let va = Interval::new(2.95, 3.05);
    let amp1 = Interval::new(0.95, 1.05);
    let amp2 = Interval::new(1.95, 2.05);
    let amp3 = Interval::new(2.95, 3.05);
    let vb = va.mul(amp1);
    let vc = vb.mul(amp2);
    let vd = vb.mul(amp3);
    println!(
        "crisp intervals (paper's bracketed figures; expected Vc=[5.46,6.56], Vd=[8.26,9.76]):"
    );
    let w = [6, 18];
    row(&["point", "propagated"], &w);
    row(&["Vb", &format!("{vb:.2}")], &w);
    row(&["Vc", &format!("{vc:.2}")], &w);
    row(&["Vd", &format!("{vd:.2}")], &w);

    // Fuzzy propagation, case (1): crisp input.
    let amp1 = FuzzyInterval::new(1.0, 1.0, 0.05, 0.05).expect("static");
    let amp2 = FuzzyInterval::new(2.0, 2.0, 0.05, 0.05).expect("static");
    let amp3 = FuzzyInterval::new(3.0, 3.0, 0.05, 0.05).expect("static");

    let case = |name: &str, va: FuzzyInterval, expect: [&str; 3]| {
        let vb = va.mul(&amp1).expect("gain product");
        let vc = vb.mul(&amp2).expect("gain product");
        let vd = vb.mul(&amp3).expect("gain product");
        println!();
        println!("fuzzy intervals, {name}:");
        let w = [6, 28, 30];
        row(&["point", "propagated", "paper"], &w);
        row(&["Vb", &tuple(&vb), expect[0]], &w);
        row(&["Vc", &tuple(&vc), expect[1]], &w);
        row(&["Vd", &tuple(&vd), expect[2]], &w);
    };

    case(
        "case (1): Va = [2.95, 3.05, 0, 0]",
        FuzzyInterval::crisp_interval(2.95, 3.05).expect("static"),
        [
            "[2.95, 3.05, 0.15, 0.15]",
            "[5.90, 6.10, 0.44, 0.46]",
            "[8.85, 9.15, 0.58, 0.62]",
        ],
    );
    case(
        "case (2): Va = [3, 3, 0.05, 0.05]",
        FuzzyInterval::new(3.0, 3.0, 0.05, 0.05).expect("static"),
        [
            "[3.00, 3.00, 0.20, 0.20]",
            "[6.00, 6.00, 0.54, 0.57]",
            "[9.00, 9.00, 0.73, 0.77]",
        ],
    );

    println!();
    println!(
        "note: fuzzy values separate the two kinds of imprecision the crisp \
         column merges — \"in (1) we divided the imprecision into two parts\"."
    );
}
