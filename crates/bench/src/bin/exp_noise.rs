//! **E8 — measurement-noise robustness**: the paper's motivation names
//! "the inaccuracy of measurements" as a core difficulty; this experiment
//! quantifies how stable the diagnosis is when every probe reading is
//! perturbed by instrument noise.
//!
//! Each Fig. 7 defect is diagnosed 50 times with zero-mean uniform noise
//! (±noise volts) added to every reading before the ±0.05 V fuzzy
//! imprecision is wrapped around it. Reported per defect and noise
//! level: the fraction of trials whose refined candidates contain the
//! true culprit, and the mean Dc at the most diagnostic point.
//!
//! Run with `cargo run -p flames-bench --bin exp_noise`.

use flames_bench::rng::SplitMix64;
use flames_bench::{header, row};
use flames_circuit::circuits::three_stage;
use flames_circuit::fault::{inject_faults, open_connection};
use flames_circuit::solve::solve_dc;
use flames_circuit::{Fault, Netlist};
use flames_core::{Diagnoser, DiagnoserConfig};
use flames_fuzzy::FuzzyInterval;

const TRIALS: usize = 50;
const IMPRECISION: f64 = 0.05;

fn main() {
    header("E8 — diagnosis stability under measurement noise (50 trials per cell)");

    let ts = three_stage(0.02);
    let diagnoser = Diagnoser::from_netlist(
        &ts.netlist,
        ts.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .expect("amplifier solves");

    let rows: Vec<(&str, Netlist, &str)> = vec![
        (
            "short R2",
            inject_faults(&ts.netlist, &[(ts.r2, Fault::Short)]).expect("fault injects"),
            "R2",
        ),
        (
            "R2 high (14k)",
            inject_faults(&ts.netlist, &[(ts.r2, Fault::Param(14_000.0))]).expect("fault injects"),
            "R2",
        ),
        (
            "beta2 low (40)",
            inject_faults(&ts.netlist, &[(ts.t2, Fault::Param(40.0))]).expect("fault injects"),
            "T2",
        ),
        (
            "open R3",
            inject_faults(&ts.netlist, &[(ts.r3, Fault::Open)]).expect("fault injects"),
            "R3",
        ),
        (
            "open N1",
            open_connection(&ts.netlist, ts.r3, ts.n1).expect("connection opens"),
            "R3",
        ),
    ];

    let w = [16, 9, 18, 18, 16];
    row(
        &[
            "defect",
            "noise V",
            "culprit in refined",
            "culprit in lattice",
            "mean worst Dc",
        ],
        &w,
    );
    let mut rng = SplitMix64::new(0x464c_414d); // "FLAM"
    for (label, board, culprit) in &rows {
        let op = solve_dc(board).expect("board solves");
        let truth = [op.voltage(ts.vs), op.voltage(ts.v1), op.voltage(ts.v2)];
        for noise in [0.0, 0.02, 0.05] {
            let mut refined_hits = 0usize;
            let mut lattice_hits = 0usize;
            let mut dc_sum = 0.0f64;
            for _ in 0..TRIALS {
                let mut session = diagnoser.session();
                for (name, v) in ["Vs", "V1", "V2"].iter().zip(truth) {
                    let jitter = rng.range_f64(-noise, noise);
                    let reading = FuzzyInterval::crisp(v + jitter)
                        .widened(IMPRECISION)
                        .expect("non-negative imprecision");
                    session.measure(name, reading).expect("point exists");
                }
                session.propagate();
                let report = session.report();
                if report
                    .refined
                    .iter()
                    .any(|c| c.members.iter().any(|m| m == culprit))
                {
                    refined_hits += 1;
                }
                if report
                    .candidates
                    .iter()
                    .any(|c| c.members.iter().any(|m| m == culprit))
                {
                    lattice_hits += 1;
                }
                dc_sum += report
                    .points
                    .iter()
                    .filter_map(|p| p.consistency.map(|dc| dc.degree()))
                    .fold(1.0f64, f64::min);
            }
            row(
                &[
                    label,
                    &format!("±{noise:.2}"),
                    &format!("{:>3.0} %", 100.0 * refined_hits as f64 / TRIALS as f64),
                    &format!("{:>3.0} %", 100.0 * lattice_hits as f64 / TRIALS as f64),
                    &format!("{:.2}", dc_sum / TRIALS as f64),
                ],
                &w,
            );
        }
    }

    println!();
    println!(
        "shape check: the candidate lattice keeps containing the culprit at \
         every noise level for hard faults, and the mean Dc barely moves — \
         the graded conflicts absorb noise instead of flipping verdicts. The \
         aggressive single-fault refinement narrows less reliably once the \
         noise approaches the deviation magnitude (soft rows), which is the \
         point where any method must hand back a wider suspect set."
    );
}
