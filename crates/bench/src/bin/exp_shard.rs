//! Shard-scaling experiment: a ≥5k-component hierarchical board
//! diagnosed end to end by the region-sharded engine at 1/2/4/8 shards.
//!
//! Two partitions of the same `hierarchy(large(7))` board are measured:
//!
//! * **boundary-sparse** — region 0 is the backbone power tree, one
//!   region per amplifier block; the cut is just the tap nodes, so each
//!   shard's assumption vocabulary (and hence its env spill width) is a
//!   fraction of the global one;
//! * **boundary-dense** — vertical slices that cut the backbone's
//!   series branch currents as well, the adversarial case where the
//!   exchange traffic is highest.
//!
//! Before any timing, the gate asserts the **ranked candidates are
//! byte-identical** across every shard count and both partitions (the
//! tentpole invariant; `tests/sharded_boards.rs` holds the stricter
//! full-report identity on small boards). Writes `BENCH_shard.json` and
//! exits non-zero unless sparse 1→4 shards is ≥ 2x and dense 1→4 is
//! no-regression (≥ 0.9x), per the DESIGN.md §10 gate convention.
//!
//! Timing is hand-rolled over `std::time::Instant` rather than the
//! harness: one warm serve of this board runs for seconds, so the gate
//! discards one serve and takes the median of [`WARM_ITERS`] more.

use flames_circuit::circuits::{hierarchy, Hierarchy, HierarchySpec};
use flames_circuit::constraint::{extract, ExtractOptions};
use flames_circuit::fault::inject_faults;
use flames_circuit::{CompId, Fault};
use flames_core::propagation::PropagatorConfig;
use flames_core::{ShardReport, ShardedModel, ShardedSession};
use flames_fuzzy::FuzzyInterval;
use std::hint::black_box;
use std::time::Instant;

/// Instrument imprecision of the simulated probe readings (volts).
const IMPRECISION: f64 = 0.02;
/// Timed warm serves per configuration (median taken, cold discarded).
const WARM_ITERS: usize = 3;

fn config() -> PropagatorConfig {
    // Same uniform step cap as tests/sharded_boards.rs: the 5k board's
    // first wave alone exceeds the paper-sized default, and every shard
    // count must run the same config or identity is meaningless.
    PropagatorConfig {
        max_steps: 5_000_000,
        ..PropagatorConfig::default()
    }
}

/// The soft-drift fault set (a backbone shunt sagging plus a block
/// divider drifting high — partial conflicts only, as in the tests).
fn faults(h: &Hierarchy) -> Vec<(CompId, Fault)> {
    vec![
        (h.backbone_shunt[1], Fault::ParamFactor(1.15)),
        (h.blocks[2][2], Fault::ParamFactor(1.25)),
    ]
}

/// Seven probe points spanning the board: early/mid/late backbone taps
/// plus two block outputs — enough to implicate both seeded faults
/// without serving all 128 test points per iteration.
fn probes(h: &Hierarchy) -> Vec<usize> {
    let b = h.spec.backbone_sections;
    vec![0, 1, 7, 31, b - 1, b + 2, b + 33]
}

fn build(h: &Hierarchy, regions: &[u32], count: usize, shards: usize) -> (ShardedModel, f64) {
    let start = Instant::now();
    let network = extract(&h.netlist, ExtractOptions::default());
    let model = ShardedModel::new(
        h.netlist.clone(),
        network,
        h.test_points.clone(),
        h.predictions().expect("replica solves"),
        regions,
        count,
        shards,
        config(),
    );
    (model, start.elapsed().as_secs_f64())
}

/// One full serve: reset, feed the probe readings, propagate to
/// cross-shard quiescence, merge the report.
fn serve(
    session: &mut ShardedSession<'_>,
    probes: &[usize],
    readings: &[FuzzyInterval],
) -> ShardReport {
    session.reset();
    for &i in probes {
        session
            .measure_point(i, readings[i])
            .expect("probe point exists");
    }
    session.propagate();
    session.report()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Measured row for one (partition, shard count) configuration.
struct Row {
    shards: usize,
    boundary: usize,
    build_s: f64,
    /// Median warm serve; `None` for shard counts that only run the
    /// identity gate.
    serve_s: Option<f64>,
    nogoods: usize,
    candidates: String,
}

/// Builds, gates, and (for `timed` shard counts) times one partition.
fn run_partition(
    h: &Hierarchy,
    regions: &[u32],
    count: usize,
    shard_counts: &[usize],
    timed: &[usize],
    probes: &[usize],
    readings: &[FuzzyInterval],
) -> Vec<Row> {
    let mut rows = Vec::new();
    for &shards in shard_counts {
        let (model, build_s) = build(h, regions, count, shards);
        let mut session = model.session();
        let cold = serve(&mut session, probes, readings);
        let candidates = format!("{:?}", cold.candidates);
        let serve_s = if timed.contains(&shards) {
            let samples: Vec<f64> = (0..WARM_ITERS)
                .map(|_| {
                    let start = Instant::now();
                    black_box(serve(&mut session, probes, readings));
                    start.elapsed().as_secs_f64()
                })
                .collect();
            // A repeat serve must reproduce the cold one byte for byte.
            assert_eq!(
                format!("{:?}", serve(&mut session, probes, readings)),
                format!("{cold:?}"),
                "warm serve diverged from cold at {shards} shards"
            );
            Some(median(samples))
        } else {
            None
        };
        println!(
            "  {shards} shard(s): build {build_s:.1}s, serve {}, cut {}, {} nogoods",
            serve_s.map_or_else(|| "-".into(), |s| format!("{s:.2}s")),
            model.boundary_len(),
            cold.nogoods.len(),
        );
        rows.push(Row {
            shards,
            boundary: model.boundary_len(),
            build_s,
            serve_s,
            nogoods: cold.nogoods.len(),
            candidates,
        });
    }
    rows
}

fn json_rows(rows: &[Row]) -> String {
    let entries: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                concat!(
                    "      \"shards_{shards}\": {{\n",
                    "        \"boundary_cut\": {cut},\n",
                    "        \"build_s\": {build:.2},\n",
                    "        \"serve_s\": {serve},\n",
                    "        \"nogoods\": {nogoods}\n",
                    "      }}"
                ),
                shards = row.shards,
                cut = row.boundary,
                build = row.build_s,
                serve = row
                    .serve_s
                    .map_or_else(|| "null".into(), |s| format!("{s:.3}")),
                nogoods = row.nogoods,
            )
        })
        .collect();
    entries.join(",\n")
}

fn speedup(rows: &[Row]) -> f64 {
    let at = |n: usize| {
        rows.iter()
            .find(|r| r.shards == n)
            .and_then(|r| r.serve_s)
            .expect("timed row")
    };
    at(1) / at(4)
}

fn main() {
    let h = hierarchy(HierarchySpec::large(7));
    let components = h.netlist.components().count();
    assert!(
        components >= 5000,
        "the scaling board must be >= 5k components, got {components}"
    );
    let board = inject_faults(&h.netlist, &faults(&h)).expect("drift injection");
    let readings = h.readings(&board, IMPRECISION).expect("replica solves");
    let probes = probes(&h);

    println!(
        "exp_shard: hierarchy(large(7)), {components} components, {} probes",
        probes.len()
    );
    println!("boundary-sparse partition (cut = backbone taps):");
    let (sregions, scount) = h.sparse_regions();
    let sparse = run_partition(
        &h,
        &sregions,
        scount,
        &[1, 2, 4, 8],
        &[1, 4],
        &probes,
        &readings,
    );
    println!("boundary-dense partition (cut crosses the backbone):");
    let (dregions, dcount) = h.dense_regions();
    let dense = run_partition(&h, &dregions, dcount, &[1, 4], &[1, 4], &probes, &readings);

    // ----- identity gates (before the timing is trusted) -------------
    // Ranked candidates must be byte-identical across every shard count
    // and both partitions — the same board, the same physics.
    let reference = &sparse[0].candidates;
    assert!(
        reference.len() > 2, // not "[]"
        "the seeded faults must yield candidates"
    );
    for row in sparse.iter().chain(&dense) {
        assert_eq!(
            &row.candidates, reference,
            "ranked candidates diverged at {} shards",
            row.shards
        );
    }
    println!("\nidentity gate passed: candidates byte-identical across 1/2/4/8 sparse + 1/4 dense");

    // ----- counters over one warm 4-shard sparse serve ----------------
    let (model, _) = build(&h, &sregions, scount, 4);
    let mut session = model.session();
    black_box(serve(&mut session, &probes, &readings));
    let before = flames_obs::MetricsSnapshot::capture();
    black_box(serve(&mut session, &probes, &readings));
    let counters = flames_obs::MetricsSnapshot::capture().delta_since(&before);

    let sparse_speedup = speedup(&sparse);
    let dense_speedup = speedup(&dense);
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"exp_shard\",\n",
            "  \"board\": \"hierarchy(large(7))\",\n",
            "  \"components\": {components},\n",
            "  \"probes\": {probes},\n",
            "  \"candidates_byte_identical\": true,\n",
            "  \"sparse\": {{\n",
            "    \"rows\": {{\n{sparse_rows}\n    }},\n",
            "    \"speedup\": {sparse_speedup:.2}\n",
            "  }},\n",
            "  \"dense\": {{\n",
            "    \"rows\": {{\n{dense_rows}\n    }},\n",
            "    \"speedup\": {dense_speedup:.2}\n",
            "  }},\n",
            "  \"counters\": {counters}\n",
            "}}\n"
        ),
        components = components,
        probes = probes.len(),
        sparse_rows = json_rows(&sparse),
        sparse_speedup = sparse_speedup,
        dense_rows = json_rows(&dense),
        dense_speedup = dense_speedup,
        counters = counters.to_json(2),
    );
    std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
    println!("\n{json}");

    assert!(
        sparse_speedup >= 2.0,
        "boundary-sparse 1->4 shards must be >= 2x, measured {sparse_speedup:.2}x"
    );
    assert!(
        dense_speedup >= 0.9,
        "boundary-dense 1->4 shards must not regress (>= 0.9x), measured {dense_speedup:.2}x"
    );
}
