//! Network-serving experiment: request coalescing measured end to end
//! over the HTTP service on the paper's Fig. 6 three-stage amplifier.
//!
//! A set of closed-loop loopback clients — each re-sending as soon as
//! its previous response lands, as a monitoring fleet would — drives two
//! servers that differ in exactly one bit of configuration:
//!
//! * **coalesced** — the admission queue drains every queued request
//!   into one board-lane wave (up to the 64-session cap) and collapses
//!   bit-identical boards onto one warm session;
//! * **one_request_per_wave** — the same server with coalescing off:
//!   every request pays its own full propagation.
//!
//! The clients share [`SCENARIOS`] distinct measurement sets (several
//! monitors watching the same few boards), so under closed-loop load the
//! coalesced server executes a fraction of the propagations — the
//! single-core speedup this experiment gates on. Before any timing, a
//! byte-identity pre-gate pins every scenario's served bytes against the
//! in-process [`flames_serve::diagnose_boards`] reference. Writes
//! `BENCH_serve.json` (p50/p99 latency and sustained RPS per mode) and
//! exits non-zero if coalesced throughput fails the ≥ 1.5× gate.

use flames_circuit::circuits::{three_stage, ThreeStage};
use flames_circuit::fault::inject_faults;
use flames_circuit::predict::measure;
use flames_circuit::Fault;
use flames_core::{Board, Diagnoser, DiagnoserConfig};
use flames_serve::protocol::render_response;
use flames_serve::{diagnose_boards, serve, Client, ServeConfig};
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const SCENARIOS: usize = 4;
const WARMUP_PER_CLIENT: usize = 2;
const REQUESTS_PER_CLIENT: usize = 25;
const MEASURE_IMPRECISION: f64 = 0.02;

/// The distinct measurement sets the client fleet shares: one healthy
/// board and three with a single drifted resistor, probing all three of
/// the paper's test points.
fn make_scenarios(ts: &ThreeStage) -> Vec<Board> {
    let variants = [
        None,
        Some((ts.r2, 1.3)),
        Some((ts.r4, 0.8)),
        Some((ts.r5, 1.25)),
    ];
    variants[..SCENARIOS]
        .iter()
        .map(|fault| {
            let netlist = match fault {
                Some((comp, factor)) => {
                    inject_faults(&ts.netlist, &[(*comp, Fault::ParamFactor(*factor))])
                        .expect("drift injection")
                }
                None => ts.netlist.clone(),
            };
            ts.test_points
                .iter()
                .enumerate()
                .map(|(idx, tp)| {
                    (
                        idx,
                        measure(&netlist, tp.net, MEASURE_IMPRECISION).expect("board solves"),
                    )
                })
                .collect()
        })
        .collect()
}

/// Renders one scenario as a `/diagnose` request body.
fn request_body(board: &Board) -> String {
    let mut out = String::from("{\"boards\": [[");
    for (j, (idx, v)) in board.iter().enumerate() {
        if j > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"point\": {idx}, \"value\": {{\"m1\": {}, \"m2\": {}, \"alpha\": {}, \"beta\": {}}}}}",
            v.core_lo(),
            v.core_hi(),
            v.spread_left(),
            v.spread_right()
        );
    }
    out.push_str("]], \"next_probe\": true}");
    out
}

struct ModeResult {
    p50_us: f64,
    p99_us: f64,
    rps: f64,
}

/// Runs one closed-loop load phase against a fresh server and returns
/// the latency/throughput summary.
fn run_mode(
    diagnoser: &Diagnoser,
    bodies: &[String],
    expected: &[String],
    coalesce: bool,
) -> ModeResult {
    let handle = serve(
        "127.0.0.1:0",
        diagnoser.clone(),
        ServeConfig {
            workers: CLIENTS,
            coalesce,
            ..ServeConfig::default()
        },
    )
    .expect("server binds");
    let addr: SocketAddr = handle.addr();
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            let body = bodies[c % SCENARIOS].clone();
            let expect = expected[c % SCENARIOS].clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                for _ in 0..WARMUP_PER_CLIENT {
                    let r = client.diagnose(&body).expect("warmup request");
                    assert_eq!(r.status, 200, "{}", r.body);
                }
                barrier.wait();
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
                for _ in 0..REQUESTS_PER_CLIENT {
                    let start = Instant::now();
                    let r = client.diagnose(&body).expect("timed request");
                    latencies.push(start.elapsed());
                    assert_eq!(r.status, 200, "{}", r.body);
                    assert_eq!(r.body, expect, "served bytes drifted under load");
                }
                latencies
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    let mut latencies: Vec<Duration> = Vec::with_capacity(CLIENTS * REQUESTS_PER_CLIENT);
    for t in threads {
        latencies.extend(t.join().expect("client thread"));
    }
    let wall = start.elapsed();
    handle.shutdown();

    latencies.sort();
    let micros = |d: Duration| d.as_secs_f64() * 1e6;
    ModeResult {
        p50_us: micros(latencies[latencies.len() / 2]),
        p99_us: micros(latencies[latencies.len() * 99 / 100]),
        rps: latencies.len() as f64 / wall.as_secs_f64(),
    }
}

fn main() {
    let ts = three_stage(0.05);
    let diagnoser = Diagnoser::from_netlist(
        &ts.netlist,
        ts.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .expect("three-stage model compiles");
    let scenarios = make_scenarios(&ts);
    let bodies: Vec<String> = scenarios.iter().map(request_body).collect();
    let expected: Vec<String> = scenarios
        .iter()
        .map(|b| {
            render_response(
                &diagnose_boards(&diagnoser, std::slice::from_ref(b), true)
                    .expect("in-process reference"),
            )
        })
        .collect();

    // ----- byte-identity pre-gate (before any timing is trusted) -----
    {
        let handle =
            serve("127.0.0.1:0", diagnoser.clone(), ServeConfig::default()).expect("server binds");
        let mut client = Client::connect(handle.addr()).expect("client connects");
        for (body, expect) in bodies.iter().zip(&expected) {
            let r = client.diagnose(body).expect("pre-gate request");
            assert_eq!(r.status, 200, "{}", r.body);
            assert_eq!(
                r.body, *expect,
                "served bytes must equal the in-process wave reference"
            );
        }
        handle.shutdown();
    }
    println!("byte-identity gate passed: served == in-process wave reference for {SCENARIOS} scenarios\n");

    // ----- closed-loop load, counters over the coalesced phase -------
    let baseline = run_mode(&diagnoser, &bodies, &expected, false);
    let before = flames_obs::MetricsSnapshot::capture();
    let coalesced = run_mode(&diagnoser, &bodies, &expected, true);
    let counters = flames_obs::MetricsSnapshot::capture().delta_since(&before);

    let speedup = coalesced.rps / baseline.rps;
    let row = |m: &ModeResult| {
        format!(
            concat!(
                "{{\n",
                "      \"p50_us\": {p50:.0},\n",
                "      \"p99_us\": {p99:.0},\n",
                "      \"requests_per_sec\": {rps:.1}\n",
                "    }}"
            ),
            p50 = m.p50_us,
            p99 = m.p99_us,
            rps = m.rps,
        )
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"exp_serve\",\n",
            "  \"circuit\": \"three_stage(0.05)\",\n",
            "  \"clients\": {clients},\n",
            "  \"scenarios\": {scenarios},\n",
            "  \"requests_per_client\": {reqs},\n",
            "  \"byte_identical\": true,\n",
            "  \"rows\": {{\n",
            "    \"one_request_per_wave\": {base},\n",
            "    \"coalesced\": {coal}\n",
            "  }},\n",
            "  \"counters\": {counters},\n",
            "  \"coalesced_speedup\": {speedup:.2}\n",
            "}}\n"
        ),
        clients = CLIENTS,
        scenarios = SCENARIOS,
        reqs = REQUESTS_PER_CLIENT,
        base = row(&baseline),
        coal = row(&coalesced),
        counters = counters.to_json(2),
        speedup = speedup,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("{json}");

    assert!(
        speedup >= 1.5,
        "coalesced serving must be at least 1.5x one-request-per-wave at {CLIENTS} clients, measured {speedup:.2}x"
    );
}
