//! **E2 — §4.2**: the fault-masking scenario.
//!
//! `amp2` actually has gain 1.8 (a soft fault, −10 %); the output
//! `Vc = 5.6` is measured and back-propagated toward the input:
//!
//! * with **crisp intervals** the inferred `Va = [2.96, 3.27]` overlaps
//!   the nominal `[2.95, 3.05]` — the fault is masked;
//! * with **fuzzy intervals** the inferred `Va` is a fuzzy number whose
//!   agreement with the nominal input carries a membership degree well
//!   below 1 — "a value which oversteps the boundaries of the interval
//!   will be considered as faulty … in fuzzy intervals it will be a fault
//!   with a membership degree".
//!
//! Run with `cargo run -p flames-bench --bin exp_masking`.

use flames_bench::{header, tuple};
use flames_crisp::Interval;
use flames_fuzzy::{Consistency, FuzzyInterval};

fn main() {
    header("E2 / §4.2 — soft-fault masking: crisp vs fuzzy back-propagation");

    println!("scenario: amp2 = 1.8 (nominal 2 ± 0.05); measured Vc = 5.6");
    println!();

    // --- Crisp back-propagation (the paper's case 1). ---
    let vc = Interval::point(5.6);
    let vb = vc.div(Interval::point(1.8)).expect("non-zero divisor");
    let va = vb.div(Interval::new(0.95, 1.05)).expect("non-zero divisor");
    let nominal = Interval::new(2.95, 3.05);
    println!("crisp:  Vb = {vb:.2},  Va = {va:.2}  vs nominal Va = {nominal:.2}");
    match va.intersect(nominal) {
        Some(overlap) => println!(
            "        intersection {overlap:.2} is non-empty -> NO conflict: the fault is masked"
        ),
        None => println!("        (unexpected) conflict detected"),
    }
    println!();

    // --- Fuzzy back-propagation (the paper's case 2). ---
    let vc = FuzzyInterval::crisp(5.6)
        .widened(0.05)
        .expect("measurement imprecision");
    let vb = vc
        .div(&FuzzyInterval::crisp(1.8))
        .expect("non-zero divisor");
    let amp1 = FuzzyInterval::new(1.0, 1.0, 0.05, 0.05).expect("static");
    let va = vb.div(&amp1).expect("non-zero divisor");
    let nominal = FuzzyInterval::new(3.0, 3.0, 0.05, 0.05).expect("static");
    println!(
        "fuzzy:  Vb = {}  (paper: [3.11, 3.11, 0.027, 0.027])",
        tuple(&vb)
    );
    println!(
        "        Va = {}  (paper: [3.11, 3.11, 0.17, 0.17])",
        tuple(&va)
    );
    let dc = Consistency::between(&nominal, &va);
    println!(
        "        membership of nominal Va core (3.00) in inferred Va: {:.2}",
        va.membership(3.0)
    );
    println!(
        "        Dc(nominal, inferred) = {dc} -> graded conflict of degree {:.2}",
        dc.conflict_degree()
    );
    println!();
    println!(
        "shape check: crisp masks (overlap non-empty) while fuzzy flags the same \
         deviation with a membership degree — the paper's §4.2 argument."
    );
}
