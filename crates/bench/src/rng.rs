//! A tiny deterministic PRNG so experiments and benches need no external
//! crates (the build environment resolves nothing off the machine).
//!
//! [`SplitMix64`] is Steele, Lea & Flood's 64-bit mixer — tiny, fast, and
//! statistically solid for simulation workloads like measurement noise or
//! random workload generation. Not cryptographic.

/// SplitMix64: a 64-bit counter run through a finalizing mixer.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform `f64` in `[lo, hi)` (degenerate ranges return `lo`).
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Multiply-shift bounded sampling (Lemire); the slight modulo
        // bias of the plain reduction is irrelevant for bench workloads,
        // but this form is just as cheap and unbiased enough.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.range_f64(-0.05, 0.05);
            assert!((-0.05..0.05).contains(&y));
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
