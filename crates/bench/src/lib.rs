//! Shared helpers for the FLAMES experiment binaries and benchmarks.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §4 for the experiment index); the helpers here
//! keep their plain-text output consistent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

pub mod harness;
pub mod rng;

/// Prints a section header in the style used by every experiment binary.
pub fn header(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

/// Prints a row of equally padded cells.
pub fn row(cells: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:<w$}  ", w = *w));
    }
    println!("{}", line.trim_end());
}

/// Renders any displayable value with two-decimal precision.
pub fn fmt2(value: impl Display) -> String {
    format!("{value:.2}")
}

/// Renders a fuzzy interval with the paper's 4-tuple notation at two
/// decimals.
#[must_use]
pub fn tuple(value: &flames_fuzzy::FuzzyInterval) -> String {
    format!("{value:.2}")
}

/// Renders a crisp interval at two decimals.
#[must_use]
pub fn interval(value: &flames_crisp::Interval) -> String {
    format!("{value:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        let fi = flames_fuzzy::FuzzyInterval::new(1.0, 2.0, 0.5, 0.25).unwrap();
        assert_eq!(tuple(&fi), "[1.00, 2.00, 0.50, 0.25]");
        let ci = flames_crisp::Interval::new(1.0, 2.0);
        assert_eq!(interval(&ci), "[1.00, 2.00]");
        assert_eq!(fmt2(1.234), "1.23");
    }
}
