//! A dependency-free timing harness for the `benches/` targets.
//!
//! The workspace builds offline, so criterion is unavailable; this is the
//! minimal useful subset: warmup, a fixed measurement budget, and a
//! median-of-batches report in ns/iter. Benches run with
//! `cargo bench --features bench` and print one line per case.

use std::time::{Duration, Instant};

/// Runs registered benchmark cases and prints a small table.
pub struct Harness {
    group: String,
    warmup: Duration,
    budget: Duration,
}

impl Harness {
    /// A harness for one named group of cases.
    #[must_use]
    pub fn new(group: impl Into<String>) -> Self {
        Self {
            group: group.into(),
            warmup: Duration::from_millis(150),
            budget: Duration::from_millis(750),
        }
    }

    /// Overrides the per-case measurement budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Times `f`, printing `group/name: <median> ns/iter (<iters> iters)`.
    /// Returns the median nanoseconds per iteration.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> f64 {
        // Warmup while estimating the cost of one iteration.
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.warmup || iters == 0 {
            std::hint::black_box(f());
            iters += 1;
        }
        let per_iter = self.warmup.as_nanos() as f64 / iters as f64;
        // Split the budget into batches and report the median batch rate,
        // which is robust against scheduler hiccups.
        const BATCHES: usize = 9;
        let batch_iters =
            ((self.budget.as_nanos() as f64 / BATCHES as f64 / per_iter).ceil() as u64).max(1);
        let mut rates = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let t = Instant::now();
            for _ in 0..batch_iters {
                std::hint::black_box(f());
            }
            rates.push(t.elapsed().as_nanos() as f64 / batch_iters as f64);
        }
        rates.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = rates[BATCHES / 2];
        println!(
            "{}/{}: {} ns/iter ({} iters/batch)",
            self.group,
            name,
            format_ns(median),
            batch_iters
        );
        median
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}M", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}k", ns / 1e3)
    } else {
        format!("{ns:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let h = Harness::new("test").with_budget(Duration::from_millis(5));
        let ns = h.bench("noop_sum", || (0..100u64).sum::<u64>());
        assert!(ns > 0.0);
    }

    #[test]
    fn formats_scales() {
        assert_eq!(format_ns(12.0), "12");
        assert_eq!(format_ns(1500.0), "1.5k");
        assert_eq!(format_ns(2_500_000.0), "2.50M");
    }
}
