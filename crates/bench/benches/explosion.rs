//! Benches for E6: end-to-end fuzzy vs crisp diagnosis of a weak cascade
//! stage, across depths.
//!
//! Runs with `cargo bench --features bench` on the dependency-free
//! harness in `flames_bench::harness`.

use flames_bench::harness::Harness;
use flames_circuit::circuits::cascade;
use flames_circuit::constraint::{extract, ExtractOptions};
use flames_circuit::fault::inject_faults;
use flames_circuit::predict::measure_all;
use flames_circuit::Fault;
use flames_core::{Diagnoser, DiagnoserConfig};
use flames_crisp::{CrispConfig, CrispPropagator, Interval};
use std::hint::black_box;

fn main() {
    let h = Harness::new("explosion");
    for n in [8usize, 16] {
        let cas = cascade(n, 1.3, 0.05);
        let board =
            inject_faults(&cas.netlist, &[(cas.amps[n / 2], Fault::ParamFactor(0.7))]).unwrap();
        let readings = measure_all(&board, &cas.stages, 0.01).unwrap();
        let diagnoser = Diagnoser::from_netlist(
            &cas.netlist,
            cas.test_points.clone(),
            DiagnoserConfig::default(),
        )
        .unwrap();
        h.bench(&format!("fuzzy/{n}"), || {
            let mut s = diagnoser.session();
            for (k, r) in readings.iter().enumerate() {
                s.measure_point(k, *r).unwrap();
            }
            s.propagate();
            black_box(s.refined_candidates(64, 0.5).len())
        });
        let network = extract(&cas.netlist, ExtractOptions::default());
        h.bench(&format!("crisp/{n}"), || {
            let mut p = CrispPropagator::new(&cas.netlist, &network, CrispConfig::default());
            for (k, r) in readings.iter().enumerate() {
                p.observe(network.voltage_quantity(cas.stages[k]), Interval::from(*r));
            }
            p.run();
            black_box(p.candidates(2, 4096).len())
        });
    }
}
