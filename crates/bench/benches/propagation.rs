//! Benches for the fuzzy propagation engine on the paper's circuits and
//! generated cascades.
//!
//! Runs with `cargo bench --features bench` on the dependency-free
//! harness in `flames_bench::harness`.

use flames_bench::harness::Harness;
use flames_circuit::circuits::{cascade, ladder, three_stage};
use flames_circuit::fault::inject_faults;
use flames_circuit::predict::measure_all;
use flames_circuit::Fault;
use flames_core::{Diagnoser, DiagnoserConfig};
use std::hint::black_box;

fn bench_three_stage() {
    let ts = three_stage(0.02);
    let diagnoser = Diagnoser::from_netlist(
        &ts.netlist,
        ts.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .unwrap();
    let board = inject_faults(&ts.netlist, &[(ts.r2, Fault::Param(14_000.0))]).unwrap();
    let readings = measure_all(&board, &[ts.vs, ts.v1, ts.v2], 0.05).unwrap();
    let h = Harness::new("propagation_three_stage");
    h.bench("full_session_soft_r2", || {
        let mut s = diagnoser.session();
        s.measure("Vs", readings[0]).unwrap();
        s.measure("V1", readings[1]).unwrap();
        s.measure("V2", readings[2]).unwrap();
        black_box(s.propagate())
    });
    h.bench("diagnoser_build", || {
        Diagnoser::from_netlist(
            &ts.netlist,
            ts.test_points.clone(),
            DiagnoserConfig::default(),
        )
        .unwrap()
    });
}

fn bench_cascade() {
    let h = Harness::new("propagation_cascade");
    for n in [4usize, 8, 16] {
        let cas = cascade(n, 1.3, 0.05);
        let diagnoser = Diagnoser::from_netlist(
            &cas.netlist,
            cas.test_points.clone(),
            DiagnoserConfig::default(),
        )
        .unwrap();
        let board =
            inject_faults(&cas.netlist, &[(cas.amps[n / 2], Fault::ParamFactor(0.7))]).unwrap();
        let readings = measure_all(&board, &cas.stages, 0.01).unwrap();
        h.bench(&format!("full_session/{n}"), || {
            let mut s = diagnoser.session();
            for (k, r) in readings.iter().enumerate() {
                s.measure_point(k, *r).unwrap();
            }
            black_box(s.propagate())
        });
    }
}

fn bench_ladder() {
    let h = Harness::new("propagation_ladder");
    for n in [4usize, 8, 16] {
        let l = ladder(n, 1_000.0, 2_200.0, 0.05);
        let diagnoser = Diagnoser::from_netlist(
            &l.netlist,
            l.test_points.clone(),
            DiagnoserConfig::default(),
        )
        .unwrap();
        let board =
            inject_faults(&l.netlist, &[(l.shunt[n / 2], Fault::ParamFactor(0.5))]).unwrap();
        let readings = measure_all(&board, &l.nodes, 0.01).unwrap();
        h.bench(&format!("full_session/{n}"), || {
            let mut s = diagnoser.session();
            for (k, r) in readings.iter().enumerate() {
                s.measure_point(k, *r).unwrap();
            }
            black_box(s.propagate())
        });
    }
}

fn main() {
    bench_three_stage();
    bench_cascade();
    bench_ladder();
}
