//! Criterion benches for the truth-maintenance kernels: classic label
//! propagation and the fuzzy extension's graded updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flames_atms::{Atms, Env, FuzzyAtms};
use std::hint::black_box;

/// Builds a chain n0 → n1 → … of `depth` justified nodes over `width`
/// assumptions feeding the first node.
fn classic_chain(width: usize, depth: usize) -> Atms {
    let mut atms = Atms::new();
    let assumptions: Vec<_> = (0..width)
        .map(|k| atms.add_assumption(format!("a{k}")))
        .collect();
    let mut prev = atms.add_node("n0");
    for a in &assumptions {
        let na = atms.assumption_node(*a);
        atms.justify([na], prev, "source").unwrap();
    }
    for d in 1..depth {
        let next = atms.add_node(format!("n{d}"));
        atms.justify([prev], next, "step").unwrap();
        prev = next;
    }
    atms
}

fn bench_classic(c: &mut Criterion) {
    let mut g = c.benchmark_group("atms_classic");
    for (width, depth) in [(4usize, 8usize), (8, 16), (16, 32)] {
        g.bench_with_input(
            BenchmarkId::new("chain", format!("{width}x{depth}")),
            &(width, depth),
            |bench, &(w, d)| bench.iter(|| classic_chain(black_box(w), black_box(d))),
        );
    }
    g.bench_function("nogood_install_64", |bench| {
        bench.iter(|| {
            let mut atms = classic_chain(8, 8);
            for k in 0..64u32 {
                atms.add_nogood(Env::from_ids([k % 8, (k + 1) % 8]));
            }
            black_box(atms.nogoods().len())
        })
    });
    g.finish();
}

fn bench_fuzzy(c: &mut Criterion) {
    let mut g = c.benchmark_group("atms_fuzzy");
    g.bench_function("weighted_chain_8x16", |bench| {
        bench.iter(|| {
            let mut atms = FuzzyAtms::new();
            let a = atms.add_assumption("a");
            let mut prev = atms.assumption_node(a);
            for d in 0..16 {
                let next = atms.add_node(format!("n{d}"));
                atms.justify_weighted([prev], next, 0.9, "step").unwrap();
                prev = next;
            }
            black_box(atms.label(prev).unwrap().len())
        })
    });
    g.bench_function("graded_nogoods_and_rank", |bench| {
        bench.iter(|| {
            let mut atms = FuzzyAtms::new();
            let assumptions: Vec<_> =
                (0..12).map(|k| atms.add_assumption(format!("a{k}"))).collect();
            for k in 0..12 {
                let env = Env::from_assumptions([
                    assumptions[k % 12],
                    assumptions[(k + 3) % 12],
                ]);
                atms.add_nogood(env, 0.3 + 0.05 * k as f64);
            }
            black_box(atms.ranked_diagnoses(2, 256).len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_classic, bench_fuzzy);
criterion_main!(benches);
