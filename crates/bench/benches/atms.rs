//! Benches for the truth-maintenance kernels: classic label propagation
//! and the fuzzy extension's graded updates.
//!
//! Runs with `cargo bench --features bench` on the dependency-free
//! harness in `flames_bench::harness`.

use flames_atms::{Atms, Env, FuzzyAtms};
use flames_bench::harness::Harness;
use std::hint::black_box;

/// Builds a chain n0 → n1 → … of `depth` justified nodes over `width`
/// assumptions feeding the first node.
fn classic_chain(width: usize, depth: usize) -> Atms {
    let mut atms = Atms::new();
    let assumptions: Vec<_> = (0..width)
        .map(|k| atms.add_assumption(format!("a{k}")))
        .collect();
    let mut prev = atms.add_node("n0");
    for a in &assumptions {
        let na = atms.assumption_node(*a);
        atms.justify([na], prev, "source").unwrap();
    }
    for d in 1..depth {
        let next = atms.add_node(format!("n{d}"));
        atms.justify([prev], next, "step").unwrap();
        prev = next;
    }
    atms
}

fn bench_classic() {
    let h = Harness::new("atms_classic");
    for (width, depth) in [(4usize, 8usize), (8, 16), (16, 32)] {
        h.bench(&format!("chain/{width}x{depth}"), || {
            classic_chain(black_box(width), black_box(depth))
        });
    }
    h.bench("nogood_install_64", || {
        let mut atms = classic_chain(8, 8);
        for k in 0..64u32 {
            atms.add_nogood(Env::from_ids([k % 8, (k + 1) % 8]));
        }
        black_box(atms.nogoods().len())
    });
}

fn bench_fuzzy() {
    let h = Harness::new("atms_fuzzy");
    h.bench("weighted_chain_8x16", || {
        let mut atms = FuzzyAtms::new();
        let a = atms.add_assumption("a");
        let mut prev = atms.assumption_node(a);
        for d in 0..16 {
            let next = atms.add_node(format!("n{d}"));
            atms.justify_weighted([prev], next, 0.9, "step").unwrap();
            prev = next;
        }
        black_box(atms.label(prev).unwrap().len())
    });
    h.bench("graded_nogoods_and_rank", || {
        let mut atms = FuzzyAtms::new();
        let assumptions: Vec<_> = (0..12)
            .map(|k| atms.add_assumption(format!("a{k}")))
            .collect();
        for k in 0..12 {
            let env = Env::from_assumptions([assumptions[k % 12], assumptions[(k + 3) % 12]]);
            atms.add_nogood(env, 0.3 + 0.05 * k as f64);
        }
        black_box(atms.ranked_diagnoses(2, 256).len())
    });
}

fn main() {
    bench_classic();
    bench_fuzzy();
}
