//! Benches for minimal hitting-set generation — the candidate lattice the
//! paper's §6 builds from nogoods.
//!
//! Runs with `cargo bench --features bench` on the dependency-free
//! harness in `flames_bench::harness`.

use flames_atms::hitting::minimal_hitting_sets;
use flames_atms::Env;
use flames_bench::harness::Harness;
use std::hint::black_box;

/// Overlapping conflicts over a `universe`-sized assumption pool.
fn conflicts(universe: u32, count: usize, size: u32) -> Vec<Env> {
    (0..count)
        .map(|k| Env::from_ids((0..size).map(|j| (k as u32 * 3 + j * 5) % universe)))
        .collect()
}

fn main() {
    let h = Harness::new("hitting_sets");
    for (universe, count, size) in [(8u32, 4usize, 3u32), (12, 8, 3), (16, 12, 4), (24, 16, 4)] {
        let cs = conflicts(universe, count, size);
        h.bench(&format!("minimal/{universe}u_{count}c_{size}s"), || {
            minimal_hitting_sets(black_box(&cs), usize::MAX, 100_000).len()
        });
    }
    // Bounded-size diagnosis query (the paper's "number of faults under
    // consideration").
    let cs = conflicts(24, 16, 4);
    h.bench("minimal_capped_double_faults", || {
        minimal_hitting_sets(black_box(&cs), 2, 100_000).len()
    });
}
