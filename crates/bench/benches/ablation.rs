//! Benches for the design-choice ablations called out in `DESIGN.md` §5:
//! t-norm, kill threshold, and conflict threshold of the fuzzy engine,
//! measured on the Fig. 7 soft-fault scenario.
//!
//! Runs with `cargo bench --features bench` on the dependency-free
//! harness in `flames_bench::harness`.

use flames_atms::TNorm;
use flames_bench::harness::Harness;
use flames_circuit::circuits::three_stage;
use flames_circuit::fault::inject_faults;
use flames_circuit::predict::measure_all;
use flames_circuit::Fault;
use flames_core::propagation::PropagatorConfig;
use flames_core::{Diagnoser, DiagnoserConfig};
use std::hint::black_box;

fn session_run(diagnoser: &Diagnoser, readings: &[flames_fuzzy::FuzzyInterval]) -> usize {
    let mut s = diagnoser.session();
    s.measure("Vs", readings[0]).unwrap();
    s.measure("V1", readings[1]).unwrap();
    s.measure("V2", readings[2]).unwrap();
    s.propagate();
    s.refined_candidates(16, 0.5).len()
}

fn main() {
    let ts = three_stage(0.02);
    let board = inject_faults(&ts.netlist, &[(ts.r2, Fault::Param(14_000.0))]).unwrap();
    let readings = measure_all(&board, &[ts.vs, ts.v1, ts.v2], 0.05).unwrap();

    let h = Harness::new("ablation");
    let variants: Vec<(&str, PropagatorConfig)> = vec![
        ("tnorm_min", PropagatorConfig::default()),
        (
            "tnorm_product",
            PropagatorConfig {
                tnorm: TNorm::Product,
                ..Default::default()
            },
        ),
        (
            "kill_threshold_0.5",
            PropagatorConfig {
                kill_threshold: 0.5,
                ..Default::default()
            },
        ),
        (
            "conflict_threshold_0.10",
            PropagatorConfig {
                conflict_threshold: 0.10,
                ..Default::default()
            },
        ),
        (
            "max_entries_4",
            PropagatorConfig {
                max_entries: 4,
                ..Default::default()
            },
        ),
        (
            "max_entries_16",
            PropagatorConfig {
                max_entries: 16,
                ..Default::default()
            },
        ),
    ];
    for (name, propagator) in variants {
        let diagnoser = Diagnoser::from_netlist(
            &ts.netlist,
            ts.test_points.clone(),
            DiagnoserConfig {
                propagator,
                ..Default::default()
            },
        )
        .unwrap();
        h.bench(&format!("soft_r2/{name}"), || {
            black_box(session_run(&diagnoser, &readings))
        });
    }
}
