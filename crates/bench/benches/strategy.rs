//! Benches for best-test selection (§8): fuzzy entropy vs the GDE-style
//! probabilistic baseline.
//!
//! Runs with `cargo bench --features bench` on the dependency-free
//! harness in `flames_bench::harness`.

use flames_bench::harness::Harness;
use flames_circuit::circuits::cascade;
use flames_circuit::fault::inject_faults;
use flames_circuit::predict::measure_all;
use flames_circuit::Fault;
use flames_core::strategy::{recommend, Policy};
use flames_core::{Diagnoser, DiagnoserConfig};
use std::hint::black_box;

fn main() {
    let cas = cascade(8, 1.3, 0.03);
    let diagnoser = Diagnoser::from_netlist(
        &cas.netlist,
        cas.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .unwrap();
    let board = inject_faults(&cas.netlist, &[(cas.amps[4], Fault::ParamFactor(0.6))]).unwrap();
    let readings = measure_all(&board, &cas.stages, 0.02).unwrap();
    // A mid-diagnosis session: the output probe has fired.
    let mut session = diagnoser.session();
    session.measure_point(7, readings[7]).unwrap();
    session.propagate();

    let h = Harness::new("strategy");
    h.bench("recommend_fuzzy_entropy", || {
        black_box(recommend(&session, Policy::FuzzyEntropy, 0.1)).len()
    });
    h.bench("recommend_probabilistic", || {
        black_box(recommend(&session, Policy::Probabilistic, 0.1)).len()
    });
    h.bench("recommend_fixed_order", || {
        black_box(recommend(&session, Policy::FixedOrder, 0.1)).len()
    });
}
