//! Benches for the fuzzy-calculus kernel: LR arithmetic, exact PWL
//! intersections, the degree of consistency, and fuzzy entropy.
//!
//! Runs with `cargo bench --features bench` on the dependency-free
//! harness in `flames_bench::harness`.

use flames_bench::harness::Harness;
use flames_fuzzy::entropy::{fuzzy_entropy, shannon_entropy};
use flames_fuzzy::{Consistency, FuzzyInterval};
use std::hint::black_box;

fn bench_arith() {
    let a = FuzzyInterval::new(2.95, 3.05, 0.15, 0.15).unwrap();
    let b = FuzzyInterval::new(2.0, 2.0, 0.05, 0.05).unwrap();
    let h = Harness::new("fuzzy_arith");
    h.bench("add", || black_box(a) + black_box(b));
    h.bench("mul", || black_box(a).mul(&black_box(b)).unwrap());
    h.bench("div", || black_box(a).div(&black_box(b)).unwrap());
    h.bench("membership", || black_box(a).membership(black_box(3.01)));
}

fn bench_consistency() {
    let vm = FuzzyInterval::new(5.6, 5.6, 0.05, 0.05).unwrap();
    let vn = FuzzyInterval::new(6.0, 6.0, 0.54, 0.57).unwrap();
    let h = Harness::new("consistency");
    h.bench("dc_partial_overlap", || {
        Consistency::between(&black_box(vm), &black_box(vn))
    });
    h.bench("pwl_intersection_area", || {
        black_box(vm)
            .to_pwl()
            .intersection(&black_box(vn).to_pwl())
            .area()
    });
    h.bench("possibility", || {
        black_box(vm).possibility_of(&black_box(vn))
    });
}

fn bench_entropy() {
    let estimations: Vec<FuzzyInterval> = (0..9)
        .map(|k| {
            let x = 0.1 + 0.08 * k as f64;
            FuzzyInterval::new(x, x, 0.05, 0.05).unwrap()
        })
        .collect();
    let weights: Vec<f64> = (1..10).map(|k| k as f64).collect();
    let h = Harness::new("entropy");
    h.bench("fuzzy_entropy_9", || {
        fuzzy_entropy(black_box(&estimations)).unwrap()
    });
    h.bench("shannon_entropy_9", || shannon_entropy(black_box(&weights)));
}

fn main() {
    bench_arith();
    bench_consistency();
    bench_entropy();
}
