//! Criterion benches for the fuzzy-calculus kernel: LR arithmetic, exact
//! PWL intersections, the degree of consistency, and fuzzy entropy.

use criterion::{criterion_group, criterion_main, Criterion};
use flames_fuzzy::entropy::{fuzzy_entropy, shannon_entropy};
use flames_fuzzy::{Consistency, FuzzyInterval};
use std::hint::black_box;

fn bench_arith(c: &mut Criterion) {
    let a = FuzzyInterval::new(2.95, 3.05, 0.15, 0.15).unwrap();
    let b = FuzzyInterval::new(2.0, 2.0, 0.05, 0.05).unwrap();
    let mut g = c.benchmark_group("fuzzy_arith");
    g.bench_function("add", |bench| bench.iter(|| black_box(a) + black_box(b)));
    g.bench_function("mul", |bench| {
        bench.iter(|| black_box(a).mul(&black_box(b)).unwrap())
    });
    g.bench_function("div", |bench| {
        bench.iter(|| black_box(a).div(&black_box(b)).unwrap())
    });
    g.bench_function("membership", |bench| {
        bench.iter(|| black_box(a).membership(black_box(3.01)))
    });
    g.finish();
}

fn bench_consistency(c: &mut Criterion) {
    let vm = FuzzyInterval::new(5.6, 5.6, 0.05, 0.05).unwrap();
    let vn = FuzzyInterval::new(6.0, 6.0, 0.54, 0.57).unwrap();
    let mut g = c.benchmark_group("consistency");
    g.bench_function("dc_partial_overlap", |bench| {
        bench.iter(|| Consistency::between(&black_box(vm), &black_box(vn)))
    });
    g.bench_function("pwl_intersection_area", |bench| {
        bench.iter(|| {
            black_box(vm)
                .to_pwl()
                .intersection(&black_box(vn).to_pwl())
                .area()
        })
    });
    g.bench_function("possibility", |bench| {
        bench.iter(|| black_box(vm).possibility_of(&black_box(vn)))
    });
    g.finish();
}

fn bench_entropy(c: &mut Criterion) {
    let estimations: Vec<FuzzyInterval> = (0..9)
        .map(|k| {
            let x = 0.1 + 0.08 * k as f64;
            FuzzyInterval::new(x, x, 0.05, 0.05).unwrap()
        })
        .collect();
    let weights: Vec<f64> = (1..10).map(|k| k as f64).collect();
    let mut g = c.benchmark_group("entropy");
    g.bench_function("fuzzy_entropy_9", |bench| {
        bench.iter(|| fuzzy_entropy(black_box(&estimations)).unwrap())
    });
    g.bench_function("shannon_entropy_9", |bench| {
        bench.iter(|| shannon_entropy(black_box(&weights)))
    });
    g.finish();
}

criterion_group!(benches, bench_arith, bench_consistency, bench_entropy);
criterion_main!(benches);
