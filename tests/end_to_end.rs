//! Workspace-level end-to-end tests: the full FLAMES pipeline (solver →
//! measurements → fuzzy propagation → graded nogoods → candidates →
//! fault modes) against the crisp baseline, on the paper's circuits.

use flames::circuit::circuits::{cascade, three_stage};
use flames::circuit::constraint::{extract, ExtractOptions};
use flames::circuit::fault::inject_faults;
use flames::circuit::predict::measure_all;
use flames::circuit::Fault;
use flames::core::fault_model::{infer_fault_mode, standard_modes};
use flames::core::propagation::PropagatorConfig;
use flames::core::{Diagnoser, DiagnoserConfig};
use flames::crisp::{CrispConfig, CrispPropagator, Interval};

#[test]
fn soft_fault_fuzzy_detects_crisp_masks() {
    // A cascade stage at 96 % of its gain: inside every crisp wall.
    let c = cascade(6, 1.3, 0.05);
    let board = inject_faults(&c.netlist, &[(c.amps[3], Fault::ParamFactor(0.96))]).unwrap();
    let readings = measure_all(&board, &c.stages, 0.01).unwrap();

    // Fuzzy engine: flags and ranks the weak stage.
    let diagnoser = Diagnoser::from_netlist(
        &c.netlist,
        c.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .unwrap();
    let mut session = diagnoser.session();
    for (k, r) in readings.iter().enumerate() {
        session.measure_point(k, *r).unwrap();
    }
    session.propagate();
    assert!(
        !session.propagator().atms().nogoods().is_empty(),
        "fuzzy engine must flag the soft fault"
    );
    let refined = session.refined_candidates(16, 0.5);
    assert_eq!(
        refined.first().map(|c| c.members[0].as_str()),
        Some("amp_4"),
        "weak stage must rank first: {refined:?}"
    );

    // Crisp engine: total silence.
    let network = extract(&c.netlist, ExtractOptions::default());
    let mut crisp = CrispPropagator::new(&c.netlist, &network, CrispConfig::default());
    for (k, r) in readings.iter().enumerate() {
        crisp.observe(network.voltage_quantity(c.stages[k]), Interval::from(*r));
    }
    crisp.run();
    assert!(
        crisp.atms().nogoods().is_empty(),
        "crisp engine masks the soft fault (the paper's §4.2 at scale)"
    );
}

#[test]
fn hard_fault_both_engines_detect() {
    let c = cascade(6, 1.3, 0.05);
    let board = inject_faults(&c.netlist, &[(c.amps[3], Fault::ParamFactor(0.6))]).unwrap();
    let readings = measure_all(&board, &c.stages, 0.01).unwrap();

    let diagnoser = Diagnoser::from_netlist(
        &c.netlist,
        c.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .unwrap();
    let mut session = diagnoser.session();
    for (k, r) in readings.iter().enumerate() {
        session.measure_point(k, *r).unwrap();
    }
    session.propagate();
    assert!(!session.candidates(2, 64).is_empty());

    let network = extract(&c.netlist, ExtractOptions::default());
    let mut crisp = CrispPropagator::new(&c.netlist, &network, CrispConfig::default());
    for (k, r) in readings.iter().enumerate() {
        crisp.observe(network.voltage_quantity(c.stages[k]), Interval::from(*r));
    }
    crisp.run();
    assert!(!crisp.atms().nogoods().is_empty());
    let amp4 = crisp.component_assumption(c.amps[3].index());
    assert!(crisp
        .candidates(2, 256)
        .iter()
        .any(|env| env.contains(amp4)));
}

#[test]
fn fig7_defect_menu_smoke() {
    let ts = three_stage(0.02);
    let diagnoser = Diagnoser::from_netlist(
        &ts.netlist,
        ts.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .unwrap();
    let boards = vec![
        (
            "short R2",
            inject_faults(&ts.netlist, &[(ts.r2, Fault::Short)]).unwrap(),
        ),
        (
            "R2 high",
            inject_faults(&ts.netlist, &[(ts.r2, Fault::Param(14_000.0))]).unwrap(),
        ),
        (
            "beta2 low",
            inject_faults(&ts.netlist, &[(ts.t2, Fault::Param(40.0))]).unwrap(),
        ),
        (
            "open R3",
            inject_faults(&ts.netlist, &[(ts.r3, Fault::Open)]).unwrap(),
        ),
    ];
    for (label, board) in boards {
        let readings = measure_all(&board, &[ts.vs, ts.v1, ts.v2], 0.05).unwrap();
        let mut session = diagnoser.session();
        session.measure("Vs", readings[0]).unwrap();
        session.measure("V1", readings[1]).unwrap();
        session.measure("V2", readings[2]).unwrap();
        session.propagate();
        let report = session.report();
        assert!(
            !report.refined.is_empty(),
            "{label}: refinement must produce suspects\n{report}"
        );
        // Every refined candidate is a single component or connection.
        for cand in &report.refined {
            assert_eq!(cand.members.len(), 1, "{label}: {report}");
        }
    }
}

#[test]
fn fault_mode_refinement_identifies_short() {
    let ts = three_stage(0.02);
    let diagnoser = Diagnoser::from_netlist(
        &ts.netlist,
        ts.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .unwrap();
    let board = inject_faults(&ts.netlist, &[(ts.r2, Fault::Short)]).unwrap();
    let readings = measure_all(&board, &[ts.vs, ts.v1, ts.v2], 0.05).unwrap();
    let measurements = vec![
        ("Vs".to_owned(), readings[0]),
        ("V1".to_owned(), readings[1]),
        ("V2".to_owned(), readings[2]),
    ];
    let modes = standard_modes(0.02);
    let md = infer_fault_mode(
        &diagnoser,
        &measurements,
        ts.r2,
        &modes,
        PropagatorConfig::default(),
    )
    .unwrap();
    let (mode, degree) = md.best().expect("R2's value is inferable");
    assert_eq!(mode, "short");
    assert!(degree > 0.9);
}

#[test]
fn double_fault_yields_pair_candidates() {
    // "We entertain the possibility of multiple faults where the space of
    // potential candidates grows exponentially" (§6). Two simultaneous
    // hard faults in different cascade stages: no single component hits
    // every conflict, so pair candidates appear — containing the truth.
    let c = cascade(6, 1.3, 0.05);
    let board = inject_faults(
        &c.netlist,
        &[
            (c.amps[1], Fault::ParamFactor(0.6)),
            (c.amps[4], Fault::ParamFactor(0.6)),
        ],
    )
    .unwrap();
    let readings = measure_all(&board, &c.stages, 0.01).unwrap();
    let diagnoser = Diagnoser::from_netlist(
        &c.netlist,
        c.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .unwrap();
    let mut session = diagnoser.session();
    for (k, r) in readings.iter().enumerate() {
        session.measure_point(k, *r).unwrap();
    }
    session.propagate();
    let cands = session.candidates(2, 256);
    assert!(!cands.is_empty());
    // The true double fault {amp_2, amp_5} must be among the candidates.
    let truth = cands.iter().any(|c| {
        c.members.len() == 2
            && c.members.contains(&"amp_2".to_owned())
            && c.members.contains(&"amp_5".to_owned())
    });
    assert!(truth, "{cands:?}");
    // And no *single* component explains both conflicts.
    assert!(cands.iter().all(|c| c.members.len() > 1), "{cands:?}");
}

#[test]
fn healthy_boards_stay_clean_across_circuits() {
    for netcase in 0..2 {
        let (netlist, points, nets): (
            flames::circuit::Netlist,
            Vec<flames::circuit::predict::TestPoint>,
            Vec<flames::circuit::Net>,
        ) = match netcase {
            0 => {
                let ts = three_stage(0.02);
                (
                    ts.netlist.clone(),
                    ts.test_points.clone(),
                    vec![ts.vs, ts.v1, ts.v2],
                )
            }
            _ => {
                let c = cascade(5, 1.4, 0.04);
                (c.netlist.clone(), c.test_points.clone(), c.stages.clone())
            }
        };
        let diagnoser =
            Diagnoser::from_netlist(&netlist, points, DiagnoserConfig::default()).unwrap();
        let readings = measure_all(&netlist, &nets, 0.01).unwrap();
        let mut session = diagnoser.session();
        for (k, net) in nets.iter().enumerate() {
            let idx = diagnoser
                .test_points()
                .iter()
                .position(|tp| tp.net == *net)
                .unwrap();
            session.measure_point(idx, readings[k]).unwrap();
        }
        session.propagate();
        assert!(
            session.candidates(2, 16).is_empty(),
            "healthy board produced candidates (case {netcase})"
        );
    }
}
