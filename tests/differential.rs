//! Differential fuzzy-vs-crisp harness.
//!
//! On *rectangular* inputs — component tolerances extracted as crisp
//! interval width (`ExtractOptions::interval_tolerance`), rectangular
//! predictions, and crisp-interval measurements — the fuzzy engine's
//! possibility degrees collapse to {0, 1}: every coincidence is either
//! fully consistent or a total conflict, exactly the boolean
//! empty-intersection test the DIANA-style crisp engine runs. Since
//! both engines execute the same [`flames::circuit::constraint`]
//! schedule with the same caps, their nogood stores and candidate
//! lattices must then be *identical* — any divergence is a bug in one
//! of the mirrored propagators.
//!
//! Real (nonzero) tolerances matter here: with exact point seeds,
//! different floating-point derivation paths of the same nominal value
//! differ at the last ulp and raise *spurious* hairline conflicts whose
//! cap-eviction tie-breaking legitimately differs between the engines.
//! Interval widths of a few percent swamp that noise.
//!
//! The harness generates seeded random resistor/diode ladders
//! (SplitMix64), injects parametric drifts and shorts, measures every
//! internal node on the (faulted) board, and cross-checks the two
//! engines on ≥ 200 boards. Every 10th board additionally cross-checks
//! the compiled serving path against [`Diagnoser::cold_session`] and a
//! pooled session, down to byte-identical diagnosis traces.

use flames::circuit::constraint::{extract, ExtractOptions, QuantityId};
use flames::circuit::fault::inject_faults;
use flames::circuit::predict::{nominal_predictions, TestPoint};
use flames::circuit::solve::solve_dc;
use flames::circuit::{CompId, Fault, Net, Netlist};
use flames::core::{
    diagnose_batch, diagnose_batch_lanes, Board, Diagnoser, DiagnoserConfig, SessionPool,
};
use flames::crisp::{CrispConfig, CrispPropagator, Interval};
use flames::fuzzy::FuzzyInterval;
use flames_bench::rng::SplitMix64;

const MEASURE_IMPRECISION: f64 = 0.05;

/// A generated circuit: netlist, test points, and the components that
/// may be faulted.
struct Generated {
    netlist: Netlist,
    test_points: Vec<TestPoint>,
    fault_sites: Vec<CompId>,
}

/// A random 2–4 section ladder with 2–8 % resistor tolerances. Each
/// section is `prev —Rs— node` with a shunt to ground that is either a
/// plain resistor or (one section in three) a diode-plus-resistor
/// branch, so the generator exercises both the linear and the piecewise
/// solver paths.
fn random_ladder(rng: &mut SplitMix64) -> Generated {
    let sections = 2 + rng.below(3) as usize;
    let mut nl = Netlist::new();
    let vin = nl.add_net("vin");
    nl.add_voltage_source("Vin", vin, Net::GROUND, rng.range_f64(6.0, 12.0))
        .expect("fresh name");
    let mut prev = vin;
    let mut cone: Vec<CompId> = Vec::new();
    let mut fault_sites = Vec::new();
    let mut test_points = Vec::new();
    for k in 1..=sections {
        let node = nl.add_net(format!("n{k}"));
        let rs = nl
            .add_resistor(
                format!("Rs{k}"),
                prev,
                node,
                rng.range_f64(500.0, 4000.0),
                rng.range_f64(0.02, 0.08),
            )
            .expect("fresh name");
        cone.push(rs);
        fault_sites.push(rs);
        if rng.below(3) == 0 {
            // Diode branch: node —D— mid —Rp— gnd.
            let mid = nl.add_net(format!("m{k}"));
            let d = nl
                .add_diode(format!("D{k}"), node, mid, rng.range_f64(0.2, 0.7), 0.0)
                .expect("fresh name");
            let rp = nl
                .add_resistor(
                    format!("Rp{k}"),
                    mid,
                    Net::GROUND,
                    rng.range_f64(1000.0, 8000.0),
                    rng.range_f64(0.02, 0.08),
                )
                .expect("fresh name");
            cone.push(d);
            cone.push(rp);
            fault_sites.push(rp);
        } else {
            let rp = nl
                .add_resistor(
                    format!("Rp{k}"),
                    node,
                    Net::GROUND,
                    rng.range_f64(1000.0, 8000.0),
                    rng.range_f64(0.02, 0.08),
                )
                .expect("fresh name");
            cone.push(rp);
            fault_sites.push(rp);
        }
        test_points.push(TestPoint::new(node, format!("V{k}"), cone.clone()));
        prev = node;
    }
    Generated {
        netlist: nl,
        test_points,
        fault_sites,
    }
}

/// A board variant: healthy, drifted, or shorted.
fn random_board(g: &Generated, rng: &mut SplitMix64, i: usize) -> Option<Netlist> {
    if i == 0 {
        return Some(g.netlist.clone());
    }
    let site = g.fault_sites[rng.below(g.fault_sites.len() as u64) as usize];
    let fault = match rng.below(4) {
        0 => Fault::Short,
        1 => Fault::ParamFactor(rng.range_f64(0.2, 0.7)),
        _ => Fault::ParamFactor(rng.range_f64(1.4, 4.0)),
    };
    inject_faults(&g.netlist, &[(site, fault)]).ok()
}

/// Sorted, rendered nogood environments of the fuzzy engine — also
/// asserts that on rectangular inputs every graded nogood is total
/// (degree 1).
fn fuzzy_nogoods(session: &flames::core::Session<'_>) -> Vec<String> {
    let prop = session.propagator();
    let mut out: Vec<String> = prop
        .atms()
        .nogoods()
        .iter()
        .map(|n| {
            assert!(
                (n.degree - 1.0).abs() < 1e-12,
                "rectangular inputs admit only total conflicts, got degree {}",
                n.degree
            );
            prop.pool().render(n.env.iter())
        })
        .collect();
    out.sort();
    out
}

fn fuzzy_candidates(session: &flames::core::Session<'_>) -> Vec<String> {
    let prop = session.propagator();
    let mut out: Vec<String> = session
        .candidates(3, 4096)
        .iter()
        .map(|c| prop.pool().render(c.env.iter()))
        .collect();
    out.sort();
    out
}

fn crisp_nogoods(crisp: &CrispPropagator<'_>) -> Vec<String> {
    let mut out: Vec<String> = crisp
        .atms()
        .nogoods()
        .iter()
        .map(|env| crisp.pool().render(env.iter()))
        .collect();
    out.sort();
    out
}

fn crisp_candidates(crisp: &CrispPropagator<'_>) -> Vec<String> {
    let mut out: Vec<String> = crisp
        .candidates(3, 4096)
        .iter()
        .map(|env| crisp.pool().render(env.iter()))
        .collect();
    out.sort();
    out
}

#[test]
fn fuzzy_equals_crisp_on_200_rectangular_boards() {
    let mut rng = SplitMix64::new(0xD1FF_2026);
    let mut boards_checked = 0usize;
    let mut conflicting_boards = 0usize;
    let mut circuit_idx = 0usize;
    while boards_checked < 200 {
        circuit_idx += 1;
        let g = random_ladder(&mut rng);
        // Rectangular model: tolerances become crisp interval width, and
        // the corner-analysis prediction spreads are flattened onto
        // their supports, so the whole model is width-only.
        let opts = ExtractOptions {
            interval_tolerance: true,
            ..ExtractOptions::default()
        };
        let nets: Vec<Net> = g.test_points.iter().map(|tp| tp.net).collect();
        let predictions: Vec<FuzzyInterval> = nominal_predictions(&g.netlist, &nets)
            .expect("nominal ladder solves")
            .iter()
            .map(|p| {
                let (lo, hi) = p.support();
                FuzzyInterval::crisp_interval(lo, hi).expect("finite prediction")
            })
            .collect();
        let diagnoser = Diagnoser::from_network(
            &g.netlist,
            extract(&g.netlist, opts),
            g.test_points.clone(),
            predictions,
            DiagnoserConfig {
                extract: opts,
                ..DiagnoserConfig::default()
            },
        );
        let network = diagnoser.network();
        let point_quantities: Vec<QuantityId> = g
            .test_points
            .iter()
            .map(|tp| network.voltage_quantity(tp.net))
            .collect();
        let mut pool = SessionPool::new(&diagnoser);
        let mut lane_boards: Vec<Board> = Vec::new();
        for i in 0..5 {
            let Some(board) = random_board(&g, &mut rng, i) else {
                continue;
            };
            // Rectangular readings: a crisp interval ±imprecision
            // around the board's DC solution. (`measure`'s `widened`
            // would add *fuzzy spreads* instead, which is exactly what
            // this harness must exclude.)
            let Ok(op) = solve_dc(&board) else {
                continue; // faulted board does not solve
            };
            let readings: Vec<FuzzyInterval> = g
                .test_points
                .iter()
                .map(|tp| {
                    let v = op.voltage(tp.net);
                    FuzzyInterval::crisp_interval(v - MEASURE_IMPRECISION, v + MEASURE_IMPRECISION)
                        .expect("finite reading")
                })
                .collect();

            // Fuzzy: compiled serving path.
            let mut session = diagnoser.session();
            for (idx, r) in readings.iter().enumerate() {
                session.measure_point(idx, *r).expect("valid point");
            }
            session.propagate();

            // Crisp: same Network instance, same phase order as the
            // fuzzy path (predictions to fixpoint, then observations).
            let mut crisp = CrispPropagator::new(&g.netlist, network, CrispConfig::default());
            for (idx, tp) in g.test_points.iter().enumerate() {
                crisp.predict(
                    point_quantities[idx],
                    Interval::from(*diagnoser.prediction(idx)),
                    &tp.support,
                );
            }
            crisp.run();
            for (idx, r) in readings.iter().enumerate() {
                crisp.observe(point_quantities[idx], Interval::from(*r));
            }
            crisp.run();

            // Classification parity: no graded (partial) conflict may
            // appear on rectangular inputs.
            use flames::core::propagation::CoincidenceKind;
            assert!(
                session
                    .coincidences()
                    .iter()
                    .all(|c| c.kind != CoincidenceKind::PartialConflict),
                "circuit {circuit_idx} board {i}: partial conflict on rectangular inputs"
            );

            let fn_ = fuzzy_nogoods(&session);
            let cn = crisp_nogoods(&crisp);
            assert_eq!(
                fn_, cn,
                "circuit {circuit_idx} board {i}: nogood sets diverge"
            );
            let fc = fuzzy_candidates(&session);
            let cc = crisp_candidates(&crisp);
            assert_eq!(
                fc, cc,
                "circuit {circuit_idx} board {i}: candidate sets diverge"
            );
            if !fn_.is_empty() {
                conflicting_boards += 1;
            }

            // Serving-path cross-check on a sample of boards: the cold
            // (legacy rebuild) and pooled paths must match the compiled
            // session down to the exported diagnosis trace bytes.
            if boards_checked.is_multiple_of(10) {
                fn run<'d>(
                    readings: &[FuzzyInterval],
                    mut s: flames::core::Session<'d>,
                ) -> (String, String, flames::core::Session<'d>) {
                    for (idx, r) in readings.iter().enumerate() {
                        s.measure_point(idx, *r).expect("valid point");
                    }
                    s.propagate();
                    (format!("{:?}", s.report()), s.trace().to_chrome_json(), s)
                }
                let reference = (
                    format!("{:?}", session.report()),
                    session.trace().to_chrome_json(),
                );
                let (cold_report, cold_trace, _) = run(&readings, diagnoser.cold_session());
                assert_eq!(cold_report, reference.0, "cold report diverges");
                assert_eq!(cold_trace, reference.1, "cold trace diverges");
                let (warm_report, warm_trace, warm) = run(&readings, pool.acquire());
                assert_eq!(warm_report, reference.0, "pooled report diverges");
                assert_eq!(warm_trace, reference.1, "pooled trace diverges");
                pool.release(warm);
            }
            lane_boards.push(readings.iter().copied().enumerate().collect());
            boards_checked += 1;
        }
        // Board-lane serving on this circuit's random fleet: joint
        // propagation over a shared schedule must stay byte-identical
        // to the per-board batch path, for any lane width.
        if !lane_boards.is_empty() {
            let reference = format!(
                "{:?}",
                diagnose_batch(&diagnoser, &lane_boards, 1).expect("batch runs")
            );
            for lane_width in [1, 3, 64] {
                let laned = diagnose_batch_lanes(&diagnoser, &lane_boards, 2, lane_width)
                    .expect("lanes run");
                assert_eq!(
                    format!("{laned:?}"),
                    reference,
                    "circuit {circuit_idx}: lane-{lane_width} batch diverges from per-board"
                );
            }
        }
    }
    assert!(boards_checked >= 200);
    // The workload must actually exercise the conflict machinery, not
    // just healthy boards.
    assert!(
        conflicting_boards >= 40,
        "only {conflicting_boards} of {boards_checked} boards raised conflicts"
    );
}
