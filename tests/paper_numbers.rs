//! Cross-crate checks of the numbers printed in the paper (Fig. 2, §4.2,
//! Fig. 5): the same scenarios exercised through the circuit substrate,
//! the fuzzy calculus and the ATMS together.

use flames::atms::hitting::minimal_hitting_sets;
use flames::atms::{Env, FuzzyAtms};
use flames::circuit::circuits::{amp_branch, diode_current_spec_micro_amps};
use flames::circuit::solve::solve_dc;
use flames::crisp::Interval;
use flames::fuzzy::FuzzyInterval;

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[test]
fn fig2_circuit_solver_agrees_with_fuzzy_cores() {
    // The DC solver's nominal voltages are the cores of the fuzzy values.
    let ab = amp_branch();
    let op = solve_dc(&ab.netlist).unwrap();
    assert!(close(op.voltage(ab.b), 3.0, 1e-6));
    assert!(close(op.voltage(ab.c), 6.0, 1e-6));
    assert!(close(op.voltage(ab.d), 9.0, 1e-6));
}

#[test]
fn fig2_fuzzy_rows_to_paper_precision() {
    let amp1 = FuzzyInterval::new(1.0, 1.0, 0.05, 0.05).unwrap();
    let amp2 = FuzzyInterval::new(2.0, 2.0, 0.05, 0.05).unwrap();
    let amp3 = FuzzyInterval::new(3.0, 3.0, 0.05, 0.05).unwrap();
    // Case (2), fuzzy input.
    let va = FuzzyInterval::new(3.0, 3.0, 0.05, 0.05).unwrap();
    let vb = va.mul(&amp1).unwrap();
    let vc = vb.mul(&amp2).unwrap();
    let vd = vb.mul(&amp3).unwrap();
    for (value, (alpha, beta)) in [(vb, (0.20, 0.20)), (vc, (0.54, 0.57)), (vd, (0.73, 0.77))] {
        assert!(close(value.spread_left(), alpha, 0.01), "{value}");
        assert!(close(value.spread_right(), beta, 0.01), "{value}");
    }
}

#[test]
fn sec42_crisp_masks_fuzzy_flags() {
    // Crisp back-propagation: Va = [2.96, 3.27] overlaps [2.95, 3.05].
    let va_crisp = Interval::point(5.6)
        .div(Interval::point(1.8))
        .unwrap()
        .div(Interval::new(0.95, 1.05))
        .unwrap();
    assert!(close(va_crisp.lo(), 2.96, 0.01));
    assert!(close(va_crisp.hi(), 3.27, 0.01));
    assert!(va_crisp.intersect(Interval::new(2.95, 3.05)).is_some());

    // Fuzzy: the nominal core has membership well below 1.
    let va_fuzzy = FuzzyInterval::crisp(5.6)
        .widened(0.05)
        .unwrap()
        .div(&FuzzyInterval::crisp(1.8))
        .unwrap()
        .div(&FuzzyInterval::new(1.0, 1.0, 0.05, 0.05).unwrap())
        .unwrap();
    let mu = va_fuzzy.membership(3.0);
    assert!(mu > 0.0 && mu < 0.6, "graded flag expected, got {mu}");
}

#[test]
fn fig5_degrees_and_candidates() {
    let spec = diode_current_spec_micro_amps();
    assert!(close(spec.membership(105.0), 0.5, 1e-9));
    assert!(close(spec.membership(200.0), 0.0, 1e-9));

    let mut atms = FuzzyAtms::new();
    let d1 = atms.add_assumption("d1");
    let r1 = atms.add_assumption("r1");
    let r2 = atms.add_assumption("r2");
    atms.add_nogood(Env::from_assumptions([r1, d1]), 0.5);
    atms.add_nogood(Env::from_assumptions([r2, d1]), 1.0);

    // Classic candidate set: [d1] or [r1, r2].
    let envs: Vec<Env> = atms.nogoods().iter().map(|n| n.env.clone()).collect();
    let mut hs = minimal_hitting_sets(&envs, usize::MAX, 100);
    hs.sort_by_key(Env::len);
    assert_eq!(hs.len(), 2);
    assert_eq!(hs[0], Env::singleton(d1));
    assert_eq!(hs[1], Env::from_assumptions([r1, r2]));

    // Fuzzy ranking: [d1] @ 1 ahead of [r1, r2] @ 0.5.
    let ranked = atms.ranked_diagnoses(usize::MAX, 100);
    assert_eq!(ranked[0].env, Env::singleton(d1));
    assert!(close(ranked[0].degree, 1.0, 1e-9));
    assert!(close(ranked[1].degree, 0.5, 1e-9));
}

#[test]
fn fig1_uniform_representation() {
    // "This representation allows a crisp number, a crisp interval, a
    // fuzzy number, and a fuzzy interval to be uniformly described."
    let crisp_number = FuzzyInterval::crisp(3.0);
    let crisp_interval = FuzzyInterval::crisp_interval(2.95, 3.05).unwrap();
    let fuzzy_number = FuzzyInterval::fuzzy_number(3.0, 0.05, 0.05).unwrap();
    let fuzzy_interval = FuzzyInterval::new(2.95, 3.05, 0.05, 0.05).unwrap();
    assert!(crisp_number.is_point());
    assert!(crisp_interval.is_crisp() && !crisp_interval.is_point());
    assert!(!fuzzy_number.is_crisp());
    assert!(fuzzy_number.is_included_in(&fuzzy_interval));
    assert!(crisp_number.is_included_in(&fuzzy_number));
}
