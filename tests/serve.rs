//! End-to-end contract of the HTTP diagnosis service: a board served
//! over the socket must produce bytes identical to the same board
//! diagnosed in process — across worker counts, with coalescing on or
//! off, over keep-alive connections — and the side endpoints
//! (`/metrics`, `/trace/:id`) must stream well-formed documents.

use flames::circuit::predict::TestPoint;
use flames::circuit::{Net, Netlist};
use flames::core::{diagnose_batch_lanes, Board, Diagnoser, DiagnoserConfig};
use flames::fuzzy::FuzzyInterval;
use flames::serve::protocol::render_response;
use flames::serve::{diagnose_boards, serve, Client, ServeConfig};
use std::fmt::Write as _;

/// A two-point voltage divider: small enough that every server spin-up
/// in this suite stays cheap, rich enough to produce candidates and a
/// next-probe recommendation.
fn divider() -> Diagnoser {
    let mut nl = Netlist::new();
    let vin = nl.add_net("vin");
    let mid = nl.add_net("mid");
    nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
    let r1 = nl.add_resistor("R1", vin, mid, 1000.0, 0.05).unwrap();
    let r2 = nl
        .add_resistor("R2", mid, Net::GROUND, 1000.0, 0.05)
        .unwrap();
    let points = vec![
        TestPoint::new(mid, "Vmid", vec![r1, r2]),
        TestPoint::new(vin, "Vin", vec![]),
    ];
    Diagnoser::from_netlist(&nl, points, DiagnoserConfig::default()).unwrap()
}

fn board(v: f64) -> Board {
    vec![(0, FuzzyInterval::crisp(v).widened(0.05).unwrap())]
}

/// Renders boards as a `/diagnose` request body (indices + full
/// trapezoid objects, shortest-round-trip floats).
fn request_body(boards: &[Board], next_probe: bool) -> String {
    let mut out = String::from("{\"boards\": [");
    for (i, b) in boards.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('[');
        for (j, (idx, v)) in b.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"point\": {idx}, \"value\": {{\"m1\": {}, \"m2\": {}, \"alpha\": {}, \"beta\": {}}}}}",
                v.core_lo(),
                v.core_hi(),
                v.spread_left(),
                v.spread_right()
            );
        }
        out.push(']');
    }
    let _ = write!(out, "], \"next_probe\": {next_probe}}}");
    out
}

/// What the server must answer, computed in process through the exact
/// batcher path (dedup + lane propagation + recommendation).
fn expected_body(diagnoser: &Diagnoser, boards: &[Board], next_probe: bool) -> String {
    render_response(&diagnose_boards(diagnoser, boards, next_probe).unwrap())
}

#[test]
fn responses_are_byte_identical_to_in_process_diagnosis() {
    let diagnoser = divider();
    // Board 2 duplicates board 0 bit-for-bit: the wave dedups them onto
    // one session, and the bytes must not show it.
    let requests: Vec<(Vec<Board>, bool)> = vec![
        (vec![board(6.1)], true),
        (vec![board(6.1), board(4.2), board(6.1)], true),
        (vec![board(5.0)], false),
    ];
    for workers in [1, 3] {
        for coalesce in [true, false] {
            let handle = serve(
                "127.0.0.1:0",
                diagnoser.clone(),
                ServeConfig {
                    workers,
                    coalesce,
                    ..ServeConfig::default()
                },
            )
            .unwrap();
            let mut client = Client::connect(handle.addr()).unwrap();
            for (boards, next_probe) in &requests {
                let response = client.diagnose(&request_body(boards, *next_probe)).unwrap();
                assert_eq!(response.status, 200, "{}", response.body);
                assert_eq!(
                    response.body,
                    expected_body(&diagnoser, boards, *next_probe),
                    "workers={workers} coalesce={coalesce}"
                );
                assert!(response.header("x-request-id").is_some());
            }
            handle.shutdown();
        }
    }
}

#[test]
fn server_path_matches_the_lane_batch_reference() {
    // The in-process reference the previous test pins against must
    // itself agree with `diagnose_batch_lanes`, closing the chain from
    // socket bytes back to the engine's lane batcher.
    let diagnoser = divider();
    let boards = vec![board(6.1), board(4.2), board(5.0), board(6.1)];
    let outcomes = diagnose_boards(&diagnoser, &boards, false).unwrap();
    let reference = diagnose_batch_lanes(&diagnoser, &boards, 1, 64).unwrap();
    for (o, r) in outcomes.iter().zip(&reference) {
        assert_eq!(format!("{:?}", o.report), format!("{r:?}"));
    }
}

#[test]
fn keep_alive_serves_many_requests_per_connection() {
    let diagnoser = divider();
    let handle = serve("127.0.0.1:0", diagnoser.clone(), ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut ids = Vec::new();
    for v in [6.1, 4.2, 5.0] {
        let boards = vec![board(v)];
        let response = client.diagnose(&request_body(&boards, true)).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, expected_body(&diagnoser, &boards, true));
        ids.push(response.header("x-request-id").unwrap().to_string());
    }
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), 3, "request ids are distinct");
    handle.shutdown();
}

#[test]
fn metrics_endpoint_dumps_the_registry() {
    let handle = serve("127.0.0.1:0", divider(), ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(response.status, 200);
    let v = flames::obs::json::parse(&response.body).expect("metrics is valid JSON");
    let obj = v.as_object().expect("metrics is an object");
    for name in ["serve.accepted", "serve.coalesced", "serve.shed"] {
        assert!(obj.iter().any(|(k, _)| k == name), "missing {name}");
    }
    handle.shutdown();
}

#[test]
fn trace_endpoint_streams_a_chrome_document() {
    let diagnoser = divider();
    let handle = serve("127.0.0.1:0", diagnoser, ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let boards = vec![board(6.1), board(4.2)];
    let response = client.diagnose(&request_body(&boards, false)).unwrap();
    assert_eq!(response.status, 200);
    let id = response.header("x-request-id").unwrap().to_string();

    let trace = client
        .request("GET", &format!("/trace/{id}"), None)
        .unwrap();
    assert_eq!(trace.status, 200);
    let v = flames::obs::json::parse(&trace.body).expect("trace is valid JSON");
    let events = v.member("traceEvents").unwrap().as_array().unwrap();
    if flames::obs::enabled() {
        assert!(!events.is_empty(), "obs build records diagnosis events");
        // Both boards contribute, on distinct tids.
        let tids: std::collections::BTreeSet<u64> = events
            .iter()
            .map(|e| e.member("tid").unwrap().as_f64().unwrap() as u64)
            .collect();
        assert_eq!(tids.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    let missing = client.request("GET", "/trace/999999", None).unwrap();
    assert_eq!(missing.status, 404);
    handle.shutdown();
}
