//! Probe-planning determinism: the incremental planner (entropy memo,
//! epoch-tagged candidate cache, parallel point evaluation) must never
//! change a recommendation or a probe run. `recommend` has to be
//! byte-identical across thread counts, guided probe loops have to
//! reproduce the retained oracle loop byte-for-byte, and the candidate
//! cache must survive session reuse — a reset session (whose ATMS
//! epoch *rewinds*) must plan exactly like a fresh one.

use flames::circuit::circuits::three_stage;
use flames::circuit::fault::inject_faults;
use flames::circuit::predict::measure;
use flames::circuit::Fault;
use flames::core::strategy::{
    probe_until_isolated, probe_until_isolated_oracle, recommend, recommend_with, Policy,
    CANDIDATE_BUDGET,
};
use flames::core::{Diagnoser, DiagnoserConfig};
use flames::fuzzy::FuzzyInterval;

/// The Fig. 6 amplifier with one healthy and three drifted boards,
/// readings indexed like the diagnoser's test points.
fn amp_fleet() -> (Diagnoser, Vec<Vec<FuzzyInterval>>) {
    let ts = three_stage(0.05);
    let diagnoser = Diagnoser::from_netlist(
        &ts.netlist,
        ts.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .expect("three-stage model compiles");
    let variants = [
        None,
        Some((ts.r2, 1.3)),
        Some((ts.r4, 0.8)),
        Some((ts.r5, 1.25)),
    ];
    let boards = variants
        .iter()
        .map(|fault| {
            let netlist = match fault {
                Some((comp, factor)) => {
                    inject_faults(&ts.netlist, &[(*comp, Fault::ParamFactor(*factor))])
                        .expect("drift injection")
                }
                None => ts.netlist.clone(),
            };
            ts.test_points
                .iter()
                .map(|tp| measure(&netlist, tp.net, 0.02).expect("board solves"))
                .collect()
        })
        .collect();
    (diagnoser, boards)
}

#[test]
fn recommend_is_byte_identical_across_thread_counts() {
    let (diagnoser, boards) = amp_fleet();
    for readings in &boards {
        let mut session = diagnoser.session();
        // Walk the board one probe at a time so every intermediate
        // planning state — healthy, conflicted, nearly isolated — is
        // checked at every thread count and under every policy.
        loop {
            for policy in [
                Policy::FuzzyEntropy,
                Policy::Probabilistic,
                Policy::FixedOrder,
            ] {
                let solo = recommend_with(&session, policy, 0.05, 1);
                assert_eq!(
                    format!("{solo:?}"),
                    format!("{:?}", recommend(&session, policy, 0.05)),
                    "recommend != recommend_with(.., 1) ({policy})"
                );
                for threads in [2, 4, 8] {
                    let multi = recommend_with(&session, policy, 0.05, threads);
                    assert_eq!(
                        format!("{solo:?}"),
                        format!("{multi:?}"),
                        "recommend diverged at {threads} threads ({policy})"
                    );
                }
            }
            let next = recommend(&session, Policy::FuzzyEntropy, 0.05);
            let Some(choice) = next.first() else { break };
            session
                .measure_point(choice.point, readings[choice.point])
                .expect("measurement lands");
            session.propagate();
        }
    }
}

#[test]
fn fast_probe_loops_reproduce_the_oracle() {
    let (diagnoser, boards) = amp_fleet();
    for readings in &boards {
        for policy in [Policy::FuzzyEntropy, Policy::Probabilistic] {
            let mut fast_session = diagnoser.session();
            let fast = probe_until_isolated(&mut fast_session, policy, 0.05, &|i| readings[i])
                .expect("fast probe loop runs");
            let mut oracle_session = diagnoser.session();
            let oracle =
                probe_until_isolated_oracle(&mut oracle_session, policy, 0.05, &|i| readings[i])
                    .expect("oracle probe loop runs");
            assert_eq!(
                format!("{fast:?}"),
                format!("{oracle:?}"),
                "fast probe loop diverged from oracle ({policy})"
            );
        }
    }
}

#[test]
fn candidate_cache_survives_session_reset() {
    let (diagnoser, boards) = amp_fleet();
    // Run a full probe loop on the drifted board, warming the epoch-
    // tagged candidate cache, then reset. The reset rewinds the ATMS
    // nogood epoch, so a stale cache entry would be indistinguishable
    // by tag alone — the session must drop it and plan the healthy
    // board exactly like a factory-fresh session.
    let mut reused = diagnoser.session();
    probe_until_isolated(&mut reused, Policy::FuzzyEntropy, 0.05, &|i| boards[1][i])
        .expect("warm-up probe loop runs");
    reused.reset();

    let mut fresh = diagnoser.session();
    for (session_name, session) in [("reused", &mut reused), ("fresh", &mut fresh)] {
        let cands = session.candidates(CANDIDATE_BUDGET.max_size, CANDIDATE_BUDGET.max_count);
        assert!(
            cands.is_empty(),
            "{session_name}: healthy state must have no fault candidates, got {cands:?}"
        );
    }
    let run_reused =
        probe_until_isolated(&mut reused, Policy::FuzzyEntropy, 0.05, &|i| boards[2][i])
            .expect("reused probe loop runs");
    let run_fresh = probe_until_isolated(&mut fresh, Policy::FuzzyEntropy, 0.05, &|i| boards[2][i])
        .expect("fresh probe loop runs");
    assert_eq!(
        format!("{run_reused:?}"),
        format!("{run_fresh:?}"),
        "a reset session planned differently from a fresh one"
    );
}
