//! Shard-count invariance and determinism gates of the region-sharded
//! engine.
//!
//! The core contract of `flames::core::shard`: partitioning a board's
//! propagation into region shards with boundary exchange is an
//! implementation detail — the merged diagnosis (per-point
//! consistencies, globally renamed nogoods, ranked candidates) must be
//! **byte-identical** for 1, 2, 4 and 8 shards, on both the
//! boundary-sparse and boundary-dense partitions, healthy or faulted.
//! The 1-shard run is additionally anchored against the flat
//! [`Diagnoser`] engine: same nogood list, same ranked candidates.

use flames::circuit::circuits::{hierarchy, Hierarchy, HierarchySpec};
use flames::circuit::constraint::{extract, ExtractOptions};
use flames::circuit::fault::inject_faults;
use flames::circuit::Fault;
use flames::core::propagation::PropagatorConfig;
use flames::core::{Diagnoser, DiagnoserConfig, ShardReport, ShardedModel};

/// Instrument imprecision of the simulated probe readings (volts).
const IMPRECISION: f64 = 0.02;

fn config() -> PropagatorConfig {
    // A full 5k-component board runs ~19k constraints in its first
    // wave; the default per-run cap is sized for the paper's small
    // circuits, so the sharded suites raise it uniformly (every shard
    // count gets the same config — anything else would break identity).
    PropagatorConfig {
        max_steps: 5_000_000,
        ..PropagatorConfig::default()
    }
}

/// Diagnoses a (possibly faulted) board at the given shard count and
/// returns the merged report.
fn diagnose(
    h: &Hierarchy,
    regions: &[u32],
    region_count: usize,
    shard_count: usize,
    faults: &[(flames::circuit::CompId, Fault)],
) -> ShardReport {
    let network = extract(&h.netlist, ExtractOptions::default());
    let model = ShardedModel::new(
        h.netlist.clone(),
        network,
        h.test_points.clone(),
        h.predictions().unwrap(),
        regions,
        region_count,
        shard_count,
        config(),
    );
    let board = inject_faults(&h.netlist, faults).unwrap();
    let readings = h.readings(&board, IMPRECISION).unwrap();
    let mut session = model.session();
    for (idx, r) in readings.iter().enumerate() {
        session.measure_point(idx, *r).unwrap();
    }
    session.propagate();
    session.report()
}

/// The soft-drift fault set every invariance run uses: a backbone shunt
/// sagging and a block divider resistor drifting high — factors tuned to
/// raise *partial* conflicts (0 < degree < 1), the regime where graded
/// nogoods actually matter.
fn seeded_faults(h: &Hierarchy) -> Vec<(flames::circuit::CompId, Fault)> {
    vec![
        (h.backbone_shunt[1], Fault::ParamFactor(1.15)),
        (h.blocks[2][2], Fault::ParamFactor(1.25)),
    ]
}

#[test]
fn generator_and_compile_are_deterministic() {
    let a = hierarchy(HierarchySpec::small(11));
    let b = hierarchy(HierarchySpec::small(11));
    assert_eq!(format!("{}", a.netlist), format!("{}", b.netlist));
    let na = extract(&a.netlist, ExtractOptions::default());
    let nb = extract(&b.netlist, ExtractOptions::default());
    assert_eq!(format!("{na:?}"), format!("{nb:?}"));
}

#[test]
fn sparse_partition_reports_are_shard_count_invariant() {
    let h = hierarchy(HierarchySpec::small(7));
    let (regions, count) = h.sparse_regions();
    let faults = seeded_faults(&h);
    let reference = diagnose(&h, &regions, count, 1, &faults);
    assert!(
        !reference.nogoods.is_empty(),
        "the seeded faults must raise conflicts"
    );
    for (_, degree) in &reference.nogoods {
        assert!(*degree < 1.0, "fault drift must stay a partial conflict");
    }
    // Both seeded faults are implicated by at least one conflict. (They
    // need not appear in *minimal* hitting sets — backbone components
    // sit in every cone, so singleton candidates can cover the store.)
    for comp in [h.blocks[2][2], h.backbone_shunt[1]] {
        let faulted = h.netlist.component(comp).name().to_owned();
        assert!(
            reference
                .nogoods
                .iter()
                .any(|(set, _)| set.contains(&faulted)),
            "faulted {faulted} missing from every nogood"
        );
    }
    assert!(!reference.candidates.is_empty());
    for shards in [2usize, 4, 8] {
        let report = diagnose(&h, &regions, count, shards, &faults);
        assert_eq!(
            format!("{report:?}"),
            format!("{reference:?}"),
            "sparse partition, {shards} shards"
        );
    }
}

#[test]
fn dense_partition_reports_are_shard_count_invariant() {
    let h = hierarchy(HierarchySpec::small(7));
    let (regions, count) = h.dense_regions();
    let faults = seeded_faults(&h);
    let reference = diagnose(&h, &regions, count, 1, &faults);
    assert!(!reference.nogoods.is_empty());
    for shards in [2usize, 4] {
        let report = diagnose(&h, &regions, count, shards, &faults);
        assert_eq!(
            format!("{report:?}"),
            format!("{reference:?}"),
            "dense partition, {shards} shards"
        );
    }
}

#[test]
fn healthy_boards_raise_no_conflicts_at_any_shard_count() {
    let h = hierarchy(HierarchySpec::small(3));
    let (regions, count) = h.sparse_regions();
    for shards in [1usize, 4] {
        let report = diagnose(&h, &regions, count, shards, &[]);
        assert!(
            report.nogoods.is_empty(),
            "healthy board, {shards} shards: {:?}",
            report.nogoods
        );
        assert!(report.candidates.is_empty());
    }
}

#[test]
fn one_shard_matches_the_flat_engine() {
    let h = hierarchy(HierarchySpec::small(7));
    let (regions, count) = h.sparse_regions();
    let faults = seeded_faults(&h);
    let sharded = diagnose(&h, &regions, count, 1, &faults);

    let network = extract(&h.netlist, ExtractOptions::default());
    let flat = Diagnoser::from_network(
        &h.netlist,
        network,
        h.test_points.clone(),
        h.predictions().unwrap(),
        DiagnoserConfig {
            propagator: config(),
            ..DiagnoserConfig::default()
        },
    );
    let board = inject_faults(&h.netlist, &faults).unwrap();
    let readings = h.readings(&board, IMPRECISION).unwrap();
    let mut session = flat.session();
    for (idx, r) in readings.iter().enumerate() {
        session.measure_point(idx, *r).unwrap();
    }
    session.propagate();
    let flat_report = session.report();

    assert_eq!(sharded.nogoods, flat_report.nogoods);
    assert_eq!(sharded.candidates, flat_report.candidates);
    for (sp, fp) in sharded.points.iter().zip(&flat_report.points) {
        assert_eq!(format!("{sp:?}"), format!("{fp:?}"));
    }
}

#[test]
fn session_reset_restores_byte_identical_reports() {
    let h = hierarchy(HierarchySpec::small(9));
    let (regions, count) = h.sparse_regions();
    let network = extract(&h.netlist, ExtractOptions::default());
    let model = ShardedModel::new(
        h.netlist.clone(),
        network,
        h.test_points.clone(),
        h.predictions().unwrap(),
        &regions,
        count,
        4,
        config(),
    );
    let faults = seeded_faults(&h);
    let board = inject_faults(&h.netlist, &faults).unwrap();
    let readings = h.readings(&board, IMPRECISION).unwrap();
    let mut session = model.session();
    let run = |s: &mut flames::core::ShardedSession<'_>| {
        for (idx, r) in readings.iter().enumerate() {
            s.measure_point(idx, *r).unwrap();
        }
        s.propagate();
        format!("{:?}", s.report())
    };
    let first = run(&mut session);
    session.reset();
    let second = run(&mut session);
    assert_eq!(first, second);
}
