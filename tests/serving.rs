//! Serving-path determinism: the compile-once/serve-many refactor must
//! never change a diagnosis. Batch runs (any thread count), warm reused
//! sessions, and cold legacy sessions all have to produce reports
//! byte-identical to a fresh sequential session per board — on the
//! paper's Fig. 6 three-stage amplifier and Fig. 5 diode network.

use flames::circuit::circuits::{diode_net, three_stage};
use flames::circuit::constraint::Network;
use flames::circuit::fault::inject_faults;
use flames::circuit::predict::{measure, nominal_predictions, TestPoint};
use flames::circuit::{Fault, Netlist};
use flames::core::{
    diagnose_batch, diagnose_batch_lanes, Board, CompiledModel, Diagnoser, DiagnoserConfig, Report,
    Session,
};

// The compiled model and its inputs must be shareable across threads —
// checked at compile time, not at run time.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<CompiledModel>();
const _: () = assert_send_sync::<Netlist>();
const _: () = assert_send_sync::<Network>();

/// The Fig. 6 amplifier with a small fleet of boards: one healthy, three
/// with a single drifted resistor each. Every board probes V1, V2, Vs.
fn three_stage_fleet() -> (Diagnoser, Vec<Board>) {
    let ts = three_stage(0.05);
    let diagnoser = Diagnoser::from_netlist(
        &ts.netlist,
        ts.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .expect("three-stage model compiles");
    let variants = [
        None,
        Some((ts.r2, 1.3)),
        Some((ts.r4, 0.8)),
        Some((ts.r5, 1.25)),
    ];
    let boards = variants
        .iter()
        .map(|fault| {
            let netlist = match fault {
                Some((comp, factor)) => {
                    inject_faults(&ts.netlist, &[(*comp, Fault::ParamFactor(*factor))])
                        .expect("drift injection")
                }
                None => ts.netlist.clone(),
            };
            ts.test_points
                .iter()
                .enumerate()
                .map(|(idx, tp)| (idx, measure(&netlist, tp.net, 0.02).expect("board solves")))
                .collect()
        })
        .collect();
    (diagnoser, boards)
}

/// The Fig. 5 diode network (spec installed): a healthy board and one
/// with r2 low enough to push the diode past its 100 µA rating.
fn diode_fleet() -> (Diagnoser, Vec<Board>) {
    let dn = diode_net();
    let points = vec![
        TestPoint::new(dn.n1, "Vn1", vec![dn.r1, dn.d1]),
        TestPoint::new(dn.n2, "Vn2", vec![dn.r1, dn.d1, dn.r2]),
    ];
    let predictions =
        nominal_predictions(&dn.netlist, &[dn.n1, dn.n2]).expect("nominal predictions");
    let diagnoser = Diagnoser::from_network(
        &dn.netlist,
        dn.network.clone(),
        points,
        predictions,
        DiagnoserConfig::default(),
    );
    let nets = [dn.n1, dn.n2];
    let boards = [None, Some((dn.r2, 0.2))]
        .iter()
        .map(|fault| {
            let netlist = match fault {
                Some((comp, factor)) => {
                    inject_faults(&dn.netlist, &[(*comp, Fault::ParamFactor(*factor))])
                        .expect("fault injection")
                }
                None => dn.netlist.clone(),
            };
            nets.iter()
                .enumerate()
                .map(|(idx, net)| (idx, measure(&netlist, *net, 0.01).expect("board solves")))
                .collect()
        })
        .collect();
    (diagnoser, boards)
}

/// Ground truth: a fresh session per board, sequentially.
fn sequential(diagnoser: &Diagnoser, boards: &[Board]) -> Vec<Report> {
    boards
        .iter()
        .map(|board| {
            let mut session = diagnoser.session();
            for &(idx, value) in board {
                session.measure_point(idx, value).expect("valid point");
            }
            session.propagate();
            session.report()
        })
        .collect()
}

fn assert_batch_matches(diagnoser: &Diagnoser, boards: &[Board]) {
    let reference = format!("{:?}", sequential(diagnoser, boards));
    for threads in [1, 2, 3, 8] {
        let batch = diagnose_batch(diagnoser, boards, threads).expect("batch runs");
        assert_eq!(
            format!("{batch:?}"),
            reference,
            "{threads}-thread batch must be byte-identical to sequential"
        );
    }
}

fn assert_warm_reuse_matches(diagnoser: &Diagnoser, boards: &[Board]) {
    let reference = sequential(diagnoser, boards);
    let mut session = diagnoser.session();
    for (board, expected) in boards.iter().zip(&reference) {
        for &(idx, value) in board {
            session.measure_point(idx, value).expect("valid point");
        }
        session.propagate();
        let report = session.report();
        assert_eq!(
            format!("{report:?}"),
            format!("{expected:?}"),
            "a warm reused session must match a fresh one"
        );
        session.reset();
    }
}

fn assert_lane_batch_matches(diagnoser: &Diagnoser, boards: &[Board]) {
    let reference = format!("{:?}", sequential(diagnoser, boards));
    for threads in [1, 2, 3] {
        for lane_width in [1, 2, 3, 64] {
            let batch =
                diagnose_batch_lanes(diagnoser, boards, threads, lane_width).expect("lanes run");
            assert_eq!(
                format!("{batch:?}"),
                reference,
                "{threads}-thread lane-{lane_width} batch must be byte-identical to sequential"
            );
        }
    }
}

#[test]
fn batch_is_deterministic_on_three_stage() {
    let (diagnoser, boards) = three_stage_fleet();
    let reports = sequential(&diagnoser, &boards);
    assert!(
        reports.iter().skip(1).all(|r| !r.nogoods.is_empty()),
        "drifted boards must raise conflicts"
    );
    assert_batch_matches(&diagnoser, &boards);
}

#[test]
fn batch_is_deterministic_on_diode_net() {
    let (diagnoser, boards) = diode_fleet();
    let reports = sequential(&diagnoser, &boards);
    assert!(
        !reports[1].nogoods.is_empty(),
        "the overcurrent board must raise conflicts"
    );
    assert_batch_matches(&diagnoser, &boards);
}

#[test]
fn warm_reuse_is_deterministic_on_three_stage() {
    let (diagnoser, boards) = three_stage_fleet();
    assert_warm_reuse_matches(&diagnoser, &boards);
}

#[test]
fn warm_reuse_is_deterministic_on_diode_net() {
    let (diagnoser, boards) = diode_fleet();
    assert_warm_reuse_matches(&diagnoser, &boards);
}

#[test]
fn lane_batches_are_deterministic_on_three_stage() {
    let (diagnoser, boards) = three_stage_fleet();
    assert_lane_batch_matches(&diagnoser, &boards);
}

#[test]
fn lane_batches_are_deterministic_on_diode_net() {
    let (diagnoser, boards) = diode_fleet();
    assert_lane_batch_matches(&diagnoser, &boards);
}

/// Driving one lane of warm sessions jointly must leave every session —
/// report AND exported trace — exactly as solo propagation would.
#[test]
fn propagate_lane_matches_solo_sessions() {
    let (diagnoser, boards) = three_stage_fleet();
    let reference: Vec<String> = boards
        .iter()
        .map(|board| {
            let mut session = diagnoser.session();
            for &(idx, value) in board {
                session.measure_point(idx, value).expect("valid point");
            }
            session.propagate();
            format!(
                "{:?}\n{}",
                session.report(),
                session.trace().to_chrome_json()
            )
        })
        .collect();
    let mut sessions: Vec<Session<'_>> = boards
        .iter()
        .map(|board| {
            let mut session = diagnoser.session();
            for &(idx, value) in board {
                session.measure_point(idx, value).expect("valid point");
            }
            session
        })
        .collect();
    {
        let mut refs: Vec<&mut Session<'_>> = sessions.iter_mut().collect();
        Session::propagate_lane(&mut refs);
    }
    for (b, (session, expected)) in sessions.iter().zip(&reference).enumerate() {
        let got = format!(
            "{:?}\n{}",
            session.report(),
            session.trace().to_chrome_json()
        );
        assert_eq!(&got, expected, "board {b}: lane propagation diverges");
    }
}

#[test]
fn cold_sessions_match_compiled_sessions() {
    let (diagnoser, boards) = three_stage_fleet();
    let reference = sequential(&diagnoser, &boards);
    let cold: Vec<Report> = boards
        .iter()
        .map(|board| {
            let mut session = diagnoser.cold_session();
            for &(idx, value) in board {
                session.measure_point(idx, value).expect("valid point");
            }
            session.propagate();
            session.report()
        })
        .collect();
    assert_eq!(
        format!("{cold:?}"),
        format!("{reference:?}"),
        "the legacy per-session rebuild must match the compiled path"
    );
}

/// The serving paths must agree beyond the `Report`: the exported
/// diagnosis trace — every propagation wave, coincidence, nogood and
/// candidate, in order — has to be byte-identical whether a board was
/// diagnosed on a fresh compiled session, a cold (legacy rebuild)
/// session, or a pooled warm session. The trace clock is logical
/// (derivation order), which is what makes byte equality meaningful.
#[test]
fn diagnosis_traces_agree_across_serving_paths() {
    let (diagnoser, boards) = three_stage_fleet();
    let mut pool = flames::core::SessionPool::new(&diagnoser);
    fn drive<'d>(
        board: &Board,
        mut session: flames::core::Session<'d>,
    ) -> (String, flames::core::Session<'d>) {
        for &(idx, value) in board {
            session.measure_point(idx, value).expect("valid point");
        }
        session.propagate();
        (session.trace().to_chrome_json(), session)
    }
    for (b, board) in boards.iter().enumerate() {
        let (reference, _) = drive(board, diagnoser.session());
        let (cold, _) = drive(board, diagnoser.cold_session());
        assert_eq!(cold, reference, "board {b}: cold trace diverges");
        let (warm, session) = drive(board, pool.acquire());
        assert_eq!(warm, reference, "board {b}: pooled trace diverges");
        pool.release(session);
    }
}
