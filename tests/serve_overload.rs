//! Overload behaviour and its accounting: flooding the server beyond
//! the admission bound must shed with explicit 429s (`Retry-After`
//! set), the `serve.shed` counter must match the observed 429s exactly,
//! and every request that *was* accepted must still produce the
//! byte-identical solo-run response — shedding never corrupts service.
//!
//! This file holds a single `#[test]` on purpose: it asserts exact
//! deltas of process-global counters, so no sibling test may run in the
//! same process.

use flames::circuit::predict::TestPoint;
use flames::circuit::{Net, Netlist};
use flames::core::{Board, Diagnoser, DiagnoserConfig};
use flames::fuzzy::FuzzyInterval;
use flames::obs::MetricsSnapshot;
use flames::serve::protocol::render_response;
use flames::serve::{diagnose_boards, serve, Client, ServeConfig, MAX_BOARDS_PER_REQUEST};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

fn divider() -> Diagnoser {
    let mut nl = Netlist::new();
    let vin = nl.add_net("vin");
    let mid = nl.add_net("mid");
    nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
    let r1 = nl.add_resistor("R1", vin, mid, 1000.0, 0.05).unwrap();
    let r2 = nl
        .add_resistor("R2", mid, Net::GROUND, 1000.0, 0.05)
        .unwrap();
    Diagnoser::from_netlist(
        &nl,
        vec![TestPoint::new(mid, "Vmid", vec![r1, r2])],
        DiagnoserConfig::default(),
    )
    .unwrap()
}

/// A maximal request: 64 boards, so the backlog bound (floored at one
/// request's worth) admits at most one queued request at a time and a
/// simultaneous burst must shed. Only 4 distinct measurement values —
/// admission control counts raw boards, while wave dedup keeps each
/// wave's propagation cost small.
fn flood_request() -> (Vec<Board>, String) {
    let boards: Vec<Board> = (0..MAX_BOARDS_PER_REQUEST)
        .map(|i| {
            let v = 4.0 + 0.05 * (i % 4) as f64;
            vec![(0usize, FuzzyInterval::crisp(v).widened(0.05).unwrap())]
        })
        .collect();
    let mut body = String::from("{\"boards\": [");
    for (i, b) in boards.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let (idx, v) = &b[0];
        let _ = write!(
            body,
            "[{{\"point\": {idx}, \"value\": {{\"m1\": {}, \"m2\": {}, \"alpha\": {}, \"beta\": {}}}}}]",
            v.core_lo(),
            v.core_hi(),
            v.spread_left(),
            v.spread_right()
        );
    }
    body.push_str("], \"next_probe\": false}");
    (boards, body)
}

#[test]
fn shedding_is_counted_exactly_and_never_corrupts_accepted_requests() {
    const CLIENTS: usize = 12;
    let diagnoser = divider();
    let (boards, request) = flood_request();
    let expected = render_response(&diagnose_boards(&diagnoser, &boards, false).unwrap());

    let handle = serve(
        "127.0.0.1:0",
        diagnoser,
        ServeConfig {
            workers: CLIENTS,
            // Floored to MAX_BOARDS_PER_REQUEST: exactly one maximal
            // request fits the backlog.
            max_backlog_boards: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let before = MetricsSnapshot::capture();
    let ok = Arc::new(AtomicUsize::new(0));
    let shed = Arc::new(AtomicUsize::new(0));
    // Burst until at least one request is shed (the race between the
    // burst and the batcher drain is real, but on a full simultaneous
    // burst shedding is overwhelmingly likely — retry to make the test
    // deterministic in outcome).
    let mut bursts = 0;
    while shed.load(Ordering::SeqCst) == 0 && bursts < 20 {
        bursts += 1;
        let barrier = Arc::new(Barrier::new(CLIENTS));
        let threads: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let request = request.clone();
                let expected = expected.clone();
                let ok = Arc::clone(&ok);
                let shed = Arc::clone(&shed);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    let response = client.diagnose(&request).unwrap();
                    match response.status {
                        200 => {
                            // The determinism half: an accepted request
                            // under overload answers the solo-run bytes.
                            assert_eq!(response.body, expected);
                            ok.fetch_add(1, Ordering::SeqCst);
                        }
                        429 => {
                            assert_eq!(response.header("retry-after"), Some("1"));
                            let v = flames::obs::json::parse(&response.body).unwrap();
                            assert_eq!(
                                v.member("error").unwrap().member("kind").unwrap().as_str(),
                                Some("overload")
                            );
                            shed.fetch_add(1, Ordering::SeqCst);
                        }
                        other => panic!("unexpected status {other}: {}", response.body),
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
    let ok = ok.load(Ordering::SeqCst);
    let shed = shed.load(Ordering::SeqCst);
    assert!(shed > 0, "no request shed across {bursts} bursts");
    assert!(ok > 0, "at least the first request of a burst is admitted");
    assert_eq!(ok + shed, bursts * CLIENTS);

    // A zero deadline is always missed: the wave drains strictly after
    // submission, so the request is accepted, then expired with a 504.
    let mut client = Client::connect(addr).unwrap();
    let response = client
        .diagnose(
            "{\"boards\": [[{\"point\": 0, \"value\": 5.0}]], \
             \"deadline_ms\": 0, \"next_probe\": false}",
        )
        .unwrap();
    assert_eq!(response.status, 504);
    let v = flames::obs::json::parse(&response.body).unwrap();
    assert_eq!(
        v.member("error").unwrap().member("kind").unwrap().as_str(),
        Some("timeout")
    );

    if flames::obs::enabled() {
        let delta = MetricsSnapshot::capture().delta_since(&before);
        assert_eq!(
            delta.get("serve.shed"),
            shed as u64,
            "shed == observed 429s"
        );
        assert_eq!(
            delta.get("serve.accepted"),
            (ok + 1) as u64,
            "accepted == 200s + the deadline-missed request"
        );
        assert_eq!(delta.get("serve.deadline_missed"), 1);
    }
    handle.shutdown();
}
