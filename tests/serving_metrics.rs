//! Serving determinism at the *metrics* level: the kernel-side counter
//! deltas of a batch diagnosis (`atms.*` and `core.*` prefixes) must
//! not depend on how many worker threads `diagnose_batch` uses. The
//! pool-side `serve.*` counters legitimately do — a 4-thread run opens
//! four pooled sessions where a sequential run reuses one — which is
//! exactly why [`MetricsSnapshot::with_prefixes`] exists. The same
//! process also pins the probe-planning counters: the fast probe loop
//! must be served incrementally (memo + candidate updates, zero
//! rebuilds), and the retained oracle loop must count its rebuilds.
//!
//! This file deliberately holds a single `#[test]` and is its own
//! integration-test binary: the counters are process-global atomics, so
//! any other test running in a sibling thread of the same process would
//! perturb the deltas. A separate binary gets a separate process.
//!
//! [`MetricsSnapshot::with_prefixes`]: flames::obs::MetricsSnapshot::with_prefixes

use flames::circuit::circuits::three_stage;
use flames::circuit::fault::inject_faults;
use flames::circuit::predict::measure;
use flames::circuit::Fault;
use flames::core::strategy::{probe_until_isolated, probe_until_isolated_oracle, Policy};
use flames::core::{diagnose_batch, Board, Diagnoser, DiagnoserConfig};
use flames::obs::MetricsSnapshot;

#[test]
fn kernel_counter_deltas_are_thread_count_invariant() {
    let ts = three_stage(0.05);
    let diagnoser = Diagnoser::from_netlist(
        &ts.netlist,
        ts.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .expect("three-stage model compiles");
    let variants = [
        None,
        Some((ts.r2, 1.3)),
        Some((ts.r4, 0.8)),
        Some((ts.r5, 1.25)),
        Some((ts.r1, 1.4)),
        Some((ts.r3, 0.7)),
    ];
    let boards: Vec<Board> = variants
        .iter()
        .map(|fault| {
            let netlist = match fault {
                Some((comp, factor)) => {
                    inject_faults(&ts.netlist, &[(*comp, Fault::ParamFactor(*factor))])
                        .expect("drift injection")
                }
                None => ts.netlist.clone(),
            };
            ts.test_points
                .iter()
                .enumerate()
                .map(|(idx, tp)| (idx, measure(&netlist, tp.net, 0.02).expect("board solves")))
                .collect()
        })
        .collect();

    let kernel = ["atms.", "core."];
    let mut deltas = Vec::new();
    let mut reports = Vec::new();
    for threads in [1, 2, 4] {
        let before = MetricsSnapshot::capture();
        let out = diagnose_batch(&diagnoser, &boards, threads).expect("batch diagnoses");
        deltas.push(MetricsSnapshot::capture().delta_since(&before));
        reports.push(format!("{out:?}"));
    }
    assert_eq!(reports[0], reports[1], "reports diverge at 2 threads");
    assert_eq!(reports[0], reports[2], "reports diverge at 4 threads");
    let rows: Vec<Vec<(&str, u64)>> = deltas
        .iter()
        .map(|d| d.with_prefixes(&kernel).collect())
        .collect();
    assert_eq!(rows[0], rows[1], "kernel counters diverge at 2 threads");
    assert_eq!(rows[0], rows[2], "kernel counters diverge at 4 threads");

    // With observability compiled in, the batch must actually have
    // moved the kernel counters; compiled out, every delta reads zero.
    let moved = rows[0].iter().any(|&(_, v)| v > 0);
    assert_eq!(moved, flames::obs::enabled());
    if flames::obs::enabled() {
        // (`atms.label_merges` is deliberately absent: node-label
        // propagation runs at model-compile time, not while serving.)
        for name in [
            "atms.env_intern_hits",
            "atms.nogood_installs",
            "core.waves",
            "core.constraint_apps",
            "core.coincidence_total_conflicts",
        ] {
            assert!(
                deltas[0].get(name) > 0,
                "{name} did not move over a conflicting batch"
            );
        }
    }

    // Probe planning: a guided probe-until-isolated loop must be served
    // entirely by the incremental planner — candidate updates replayed
    // from the install log, entropy terms from the memo, never the
    // oracle rebuild path.
    let readings = &boards[1]; // the r2-drift board: conflicts guaranteed
    let before = MetricsSnapshot::capture();
    let mut session = diagnoser.session();
    probe_until_isolated(&mut session, Policy::FuzzyEntropy, 0.05, &|i| readings[i].1)
        .expect("probe loop runs");
    let plan = MetricsSnapshot::capture().delta_since(&before);
    if flames::obs::enabled() {
        for name in [
            "strategy.probe_evals",
            "fuzzy.entropy_memo_hit",
            "fuzzy.entropy_memo_miss",
            "atms.candidates_incremental",
        ] {
            assert!(plan.get(name) > 0, "{name} did not move over a probe loop");
        }
        assert_eq!(
            plan.get("atms.candidates_rebuilt"),
            0,
            "the fast probe loop fell back to the oracle rebuild path"
        );
    } else {
        for name in [
            "strategy.probe_evals",
            "fuzzy.entropy_memo_hit",
            "fuzzy.entropy_memo_miss",
            "atms.candidates_incremental",
            "atms.candidates_rebuilt",
        ] {
            assert_eq!(plan.get(name), 0, "{name} moved with obs compiled out");
        }
    }

    // The retained oracle loop is the one path allowed to rebuild.
    let before = MetricsSnapshot::capture();
    let mut session = diagnoser.session();
    probe_until_isolated_oracle(&mut session, Policy::FuzzyEntropy, 0.05, &|i| readings[i].1)
        .expect("oracle probe loop runs");
    let oracle = MetricsSnapshot::capture().delta_since(&before);
    assert_eq!(
        oracle.get("atms.candidates_rebuilt") > 0,
        flames::obs::enabled(),
        "the oracle loop must re-enumerate candidates (and count it)"
    );

    // Region-sharded engine: a multi-shard diagnosis must exchange
    // boundary environments, deliver cross-shard nogoods, and count its
    // per-shard waves; a 1-shard run has nothing to exchange. (Same
    // process, same single #[test] — the shard.* counters are the same
    // process-global atomics.)
    use flames::circuit::circuits::{hierarchy, HierarchySpec};
    use flames::circuit::constraint::{extract, ExtractOptions};
    use flames::core::propagation::PropagatorConfig;
    use flames::core::ShardedModel;
    let h = hierarchy(HierarchySpec::small(7));
    let (regions, count) = h.sparse_regions();
    let config = PropagatorConfig {
        max_steps: 5_000_000,
        ..PropagatorConfig::default()
    };
    // Two soft drifts: a backbone shunt (conflicts at the shared taps)
    // and a block divider resistor (a conflict interior to one block
    // shard whose environment spans the cut — it must be delivered).
    let board = inject_faults(
        &h.netlist,
        &[
            (h.backbone_shunt[1], Fault::ParamFactor(1.15)),
            (h.blocks[2][2], Fault::ParamFactor(1.25)),
        ],
    )
    .expect("drift injection");
    let shard_readings = h.readings(&board, 0.02).expect("replica solves");
    let run_sharded = |shards: usize| {
        let before = MetricsSnapshot::capture();
        let model = ShardedModel::new(
            h.netlist.clone(),
            extract(&h.netlist, ExtractOptions::default()),
            h.test_points.clone(),
            h.predictions().expect("replica solves"),
            &regions,
            count,
            shards,
            config,
        );
        let mut session = model.session();
        for (idx, r) in shard_readings.iter().enumerate() {
            session.measure_point(idx, *r).expect("point exists");
        }
        session.propagate();
        assert!(!session.report().nogoods.is_empty());
        MetricsSnapshot::capture().delta_since(&before)
    };
    let solo = run_sharded(1);
    let quad = run_sharded(4);
    if flames::obs::enabled() {
        assert!(quad.get("shard.waves") > 0, "shard.waves did not move");
        assert!(
            quad.get("shard.boundary_envs") > 0,
            "a 4-shard run must exchange boundary environments"
        );
        assert!(
            quad.get("shard.cross_nogoods") > 0,
            "the backbone fault's conflict must cross the cut"
        );
        assert_eq!(
            solo.get("shard.boundary_envs"),
            0,
            "a 1-shard run has no boundary to exchange"
        );
        assert_eq!(solo.get("shard.cross_nogoods"), 0);
    } else {
        for (name, delta) in [
            ("shard.waves", &quad),
            ("shard.boundary_envs", &quad),
            ("shard.cross_nogoods", &quad),
        ] {
            assert_eq!(delta.get(name), 0, "{name} moved with obs compiled out");
        }
    }
}
