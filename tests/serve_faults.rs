//! Protocol fault injection: every way a client can misbehave on the
//! wire must map to its taxonomy error — the right status, a JSON body
//! naming the `kind` — and must leave the server fully able to serve
//! the next well-formed request.

use flames::circuit::predict::TestPoint;
use flames::circuit::{Net, Netlist};
use flames::core::{Diagnoser, DiagnoserConfig};
use flames::serve::{serve, Client, ServeConfig, ServerHandle};
use std::time::Duration;

fn divider() -> Diagnoser {
    let mut nl = Netlist::new();
    let vin = nl.add_net("vin");
    let mid = nl.add_net("mid");
    nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
    let r1 = nl.add_resistor("R1", vin, mid, 1000.0, 0.05).unwrap();
    let r2 = nl
        .add_resistor("R2", mid, Net::GROUND, 1000.0, 0.05)
        .unwrap();
    Diagnoser::from_netlist(
        &nl,
        vec![TestPoint::new(mid, "Vmid", vec![r1, r2])],
        DiagnoserConfig::default(),
    )
    .unwrap()
}

/// A server tuned for fast fault verdicts: a short read deadline (so
/// the slow-loris case resolves in milliseconds) and a small body cap.
fn fault_server() -> ServerHandle {
    serve(
        "127.0.0.1:0",
        divider(),
        ServeConfig {
            read_timeout: Duration::from_millis(300),
            max_body_bytes: 4096,
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

const GOOD_BODY: &str = "{\"boards\": [[{\"point\": \"Vmid\", \"value\": 6.1}]]}";

/// The recovery check run after every fault: a fresh connection gets a
/// full 200 diagnosis.
fn assert_still_serving(handle: &ServerHandle) {
    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client.diagnose(GOOD_BODY).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(response.body.contains("\"candidates\""));
}

/// Asserts the taxonomy body: `{"error": {"kind": ..., "status": ...}}`.
fn assert_taxonomy(body: &str, status: u16, kind: &str) {
    let v = flames::obs::json::parse(body).unwrap_or_else(|e| panic!("body {body:?}: {e}"));
    let err = v.member("error").expect("error member");
    assert_eq!(err.member("kind").unwrap().as_str(), Some(kind), "{body}");
    assert_eq!(
        err.member("status").unwrap().as_f64(),
        Some(f64::from(status))
    );
    assert!(err.member("message").is_some());
}

#[test]
fn malformed_json_is_a_bad_request() {
    let handle = fault_server();
    for body in ["{\"boards\": [[", "not json at all", "{\"boards\": 7}"] {
        let mut client = Client::connect(handle.addr()).unwrap();
        let response = client.diagnose(body).unwrap();
        assert_eq!(response.status, 400, "{body:?}");
        assert_taxonomy(&response.body, 400, "bad_request");
        assert_still_serving(&handle);
    }
    handle.shutdown();
}

#[test]
fn truncated_body_is_a_bad_request() {
    let handle = fault_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .send_raw(b"POST /diagnose HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"boards\"")
        .unwrap();
    client.shutdown_write().unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.status, 400);
    assert_taxonomy(&response.body, 400, "bad_request");
    assert!(response.body.contains("truncated"));
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn unparseable_content_length_is_a_bad_request() {
    let handle = fault_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .send_raw(b"POST /diagnose HTTP/1.1\r\nContent-Length: banana\r\n\r\n")
        .unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.status, 400);
    assert_taxonomy(&response.body, 400, "bad_request");
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn understated_content_length_truncates_the_json() {
    // Content-Length shorter than the real body: the server reads
    // exactly the declared bytes, which no longer parse.
    let handle = fault_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let head = format!("POST /diagnose HTTP/1.1\r\nContent-Length: 10\r\n\r\n{GOOD_BODY}");
    client.send_raw(head.as_bytes()).unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.status, 400);
    assert_taxonomy(&response.body, 400, "bad_request");
    assert!(response.body.contains("malformed JSON"));
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn oversize_payload_is_rejected_from_the_header() {
    let handle = fault_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    // Declared 1 MB against the 4 KiB cap: rejected before any body
    // bytes are read (none are even sent here).
    client
        .send_raw(b"POST /diagnose HTTP/1.1\r\nContent-Length: 1048576\r\n\r\n")
        .unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.status, 413);
    assert_taxonomy(&response.body, 413, "bad_request");
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn unknown_routes_and_methods_get_404_and_405() {
    let handle = fault_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    // Errors close the connection, so reconnect per probe.
    let response = client.request("GET", "/nope", None).unwrap();
    assert_eq!(response.status, 404);
    assert_taxonomy(&response.body, 404, "bad_request");

    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client.request("GET", "/diagnose", None).unwrap();
    assert_eq!(response.status, 405);
    assert_taxonomy(&response.body, 405, "bad_request");

    let mut client = Client::connect(handle.addr()).unwrap();
    let response = client.request("POST", "/metrics", Some("{}")).unwrap();
    assert_eq!(response.status, 405);
    assert_taxonomy(&response.body, 405, "bad_request");

    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn slow_loris_hits_the_read_deadline() {
    let handle = fault_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    // Drip a partial request head, then stall past the 300 ms overall
    // read deadline. The drip does NOT reset the clock.
    client.send_raw(b"POST /diagnose HT").unwrap();
    std::thread::sleep(Duration::from_millis(150));
    client.send_raw(b"TP/1.1\r\nContent-Le").unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.status, 408);
    assert_taxonomy(&response.body, 408, "timeout");
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn garbage_request_line_is_rejected() {
    let handle = fault_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.send_raw(b"\x00\x01\x02 garbage\r\n\r\n").unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.status, 400);
    assert_taxonomy(&response.body, 400, "bad_request");
    assert_still_serving(&handle);
    handle.shutdown();
}
