//! Diagnosis-trace round-trip: a three-stage-amplifier diagnosis
//! exports through [`Trace::to_chrome_json`], parses back with the
//! in-repo JSON reader, validates as Chrome `trace_event` input, and
//! carries the schema documented in `flames_core::trace` — wave spans
//! with coincidence instants nested inside them, then the final nogood
//! store and candidate ranking.
//!
//! [`Trace::to_chrome_json`]: flames::obs::Trace::to_chrome_json

use flames::circuit::circuits::three_stage;
use flames::circuit::fault::inject_faults;
use flames::circuit::predict::measure;
use flames::circuit::Fault;
use flames::core::{Diagnoser, DiagnoserConfig};
use flames::obs::json::{parse, Value};
use flames::obs::trace::validate_chrome_trace;

#[test]
fn three_stage_trace_round_trips_as_chrome_trace_event() {
    let ts = three_stage(0.05);
    let diagnoser = Diagnoser::from_netlist(
        &ts.netlist,
        ts.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .expect("three-stage model compiles");
    let board =
        inject_faults(&ts.netlist, &[(ts.r2, Fault::ParamFactor(1.3))]).expect("drift injection");
    let mut session = diagnoser.session();
    for (idx, tp) in ts.test_points.iter().enumerate() {
        let reading = measure(&board, tp.net, 0.02).expect("board solves");
        session.measure_point(idx, reading).expect("valid point");
    }
    session.propagate();
    let report = session.report();
    assert!(
        !report.candidates.is_empty(),
        "a drifted R2 board must produce candidates"
    );

    let json = session.trace().to_chrome_json();

    // 1. Valid Chrome trace_event input.
    let events = validate_chrome_trace(&json).expect("valid chrome trace");
    assert!(events > 0, "trace must not be empty");

    // 2. Round-trips through the in-repo JSON parser, structurally.
    let value = parse(&json).expect("exporter emits well-formed JSON");
    let top = value.as_object().expect("object form");
    let (_, events_value) = top
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .expect("traceEvents member");
    let events_list = events_value.as_array().expect("traceEvents is an array");
    assert_eq!(events_list.len(), events);

    let field = |e: &Value, key: &str| -> Value {
        e.as_object()
            .expect("event object")
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or(Value::Null)
    };
    let name_of =
        |e: &Value| -> String { field(e, "name").as_str().expect("name string").to_owned() };

    // 3. Schema content: exactly one wave span per propagate call, with
    //    its recorded step count; coincidence instants nested inside
    //    the span's [ts, ts+dur] window; nogoods and candidates last.
    let waves: Vec<&Value> = events_list
        .iter()
        .filter(|e| name_of(e).starts_with("wave "))
        .collect();
    assert_eq!(waves.len(), session.waves().len());
    assert_eq!(waves.len(), 1, "one propagate call was made");
    let wave = waves[0];
    assert_eq!(field(wave, "ph").as_str(), Some("X"));
    assert_eq!(field(wave, "cat").as_str(), Some("core"));
    let steps = field(wave, "args")
        .as_object()
        .and_then(|args| {
            args.iter()
                .find(|(k, _)| k == "steps")
                .and_then(|(_, v)| v.as_f64())
        })
        .expect("steps arg");
    assert_eq!(steps as usize, session.waves()[0].steps);

    let (wave_ts, wave_dur) = (
        field(wave, "ts").as_f64().expect("ts"),
        field(wave, "dur").as_f64().expect("dur"),
    );
    let coincidence_names = [
        "corroboration",
        "split",
        "partial_conflict",
        "total_conflict",
    ];
    let mut coincidences = 0usize;
    for e in events_list {
        if coincidence_names.contains(&name_of(e).as_str()) {
            coincidences += 1;
            let ts = field(e, "ts").as_f64().expect("ts");
            assert!(
                ts >= wave_ts && ts <= wave_ts + wave_dur,
                "coincidence instant outside its wave span"
            );
        }
    }
    assert_eq!(coincidences, session.coincidences().len());
    assert!(coincidences > 0, "a faulted board must record coincidences");

    let count = |name: &str| events_list.iter().filter(|e| name_of(e) == name).count();
    assert_eq!(
        count("nogood"),
        session.propagator().atms().nogoods().len(),
        "one instant per stored nogood"
    );
    assert!(count("nogood") > 0, "drifted R2 must raise conflicts");
    assert_eq!(count("candidate"), report.candidates.len());

    // 4. Determinism: the logical clock makes re-export byte-identical.
    assert_eq!(json, session.trace().to_chrome_json());
}
