//! FLAMES — a fuzzy-logic ATMS and model-based expert system for analog
//! diagnosis.
//!
//! This umbrella crate re-exports the whole workspace so examples and
//! downstream users can depend on a single name:
//!
//! * [`fuzzy`] — trapezoidal fuzzy intervals, LR arithmetic, degrees of
//!   consistency, linguistic terms, fuzzy entropy;
//! * [`atms`] — classic and fuzzy assumption-based truth maintenance,
//!   minimal hitting sets;
//! * [`circuit`] — netlists, fault injection, the DC solver standing in
//!   for the measurement bench, model extraction, the paper's circuits;
//! * [`core`] — the FLAMES diagnosis engine (propagation, conflict
//!   recognition, candidates, fault models, learning, best-test
//!   strategies);
//! * [`crisp`] — the DIANA-style crisp-interval baseline;
//! * [`obs`] — dependency-free observability: kernel counters,
//!   [`obs::MetricsSnapshot`] deltas, Chrome-trace diagnosis traces
//!   (feature `obs`, on by default; off compiles to no-ops);
//! * [`serve`] — the network-facing diagnosis service: a std-only
//!   HTTP/1.1 server that coalesces concurrent `POST /diagnose`
//!   requests into shared board-lane waves, with bounded-backlog
//!   admission control and metrics/trace endpoints.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record. The runnable
//! examples live in `examples/`:
//!
//! ```bash
//! cargo run --example quickstart
//! cargo run --example three_stage_amplifier
//! cargo run --example diode_network
//! cargo run --example best_test_probing
//! cargo run --example learning_session
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use flames_atms as atms;
pub use flames_circuit as circuit;
pub use flames_core as core;
pub use flames_crisp as crisp;
pub use flames_fuzzy as fuzzy;
pub use flames_obs as obs;
pub use flames_serve as serve;
