//! The paper's Fig. 5 diode network, driven end-to-end through the
//! engine: a low r2 pushes the diode current past its fuzzy 100 µA spec.
//!
//! ```bash
//! cargo run --example diode_network
//! ```

use flames::circuit::circuits::diode_net;
use flames::circuit::fault::inject_faults;
use flames::circuit::predict::{measure_all, nominal_predictions, TestPoint};
use flames::circuit::Fault;
use flames::core::{Diagnoser, DiagnoserConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dn = diode_net();

    // Test points: the two internal nodes around the diode.
    let points = vec![
        TestPoint::new(dn.n1, "Vn1", vec![dn.r1, dn.d1]),
        TestPoint::new(dn.n2, "Vn2", vec![dn.r1, dn.d1, dn.r2]),
    ];
    let predictions = nominal_predictions(&dn.netlist, &[dn.n1, dn.n2])?;
    // The builder's network already carries the Id ≤ 100 µA fuzzy spec.
    let diagnoser = Diagnoser::from_network(
        &dn.netlist,
        dn.network.clone(),
        points,
        predictions,
        DiagnoserConfig::default(),
    );

    // The faulty board: r2 dropped to a fifth of its value — the diode
    // current exceeds its rating ("the resistance r2 … has to be very low").
    let board = inject_faults(&dn.netlist, &[(dn.r2, Fault::ParamFactor(0.2))])?;
    let readings = measure_all(&board, &[dn.n1, dn.n2], 0.01)?;

    let mut session = diagnoser.session();
    session.measure("Vn1", readings[0])?;
    session.measure("Vn2", readings[1])?;
    session.propagate();

    let report = session.report();
    print!("{report}");

    // The spec violation names the diode; the voltage conflicts name r2 —
    // together the Fig. 5 structure.
    assert!(
        !report.nogoods.is_empty(),
        "the overcurrent must raise conflicts"
    );
    println!("diode spec violations and resistor conflicts combine as in Fig. 5.");
    Ok(())
}
