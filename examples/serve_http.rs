//! Serving diagnosis over HTTP: start the network service on a
//! loopback port, drive it with the bundled client, and print the
//! exchanges as a curl-style transcript.
//!
//! ```bash
//! cargo run --example serve_http
//! ```
//!
//! The same binary works with observability compiled out (`--no-default-features`):
//! the server serves identically and `/metrics` reports all zeros.

use flames::circuit::predict::TestPoint;
use flames::circuit::{Net, Netlist};
use flames::core::{Diagnoser, DiagnoserConfig};
use flames::serve::{serve, Client, ServeConfig};

fn transcript(
    title: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    response: &flames::serve::Response,
) {
    println!("# {title}");
    match body {
        Some(b) => println!("$ curl -s -X {method} http://$ADDR{path} -d '{b}'"),
        None => println!("$ curl -s http://$ADDR{path}"),
    }
    let shown = if response.body.len() > 400 {
        format!(
            "{}... ({} bytes)",
            &response.body[..400],
            response.body.len()
        )
    } else {
        response.body.clone()
    };
    println!("HTTP {}", response.status);
    if let Some(id) = response.header("x-request-id") {
        println!("X-Request-Id: {id}");
    }
    println!("{shown}\n");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The quickstart divider, served over the network: a 10 V source
    // driving two 1 kΩ ± 5 % resistors, probed at the midpoint and the
    // supply.
    let mut netlist = Netlist::new();
    let vin = netlist.add_net("vin");
    let mid = netlist.add_net("mid");
    netlist.add_voltage_source("V", vin, Net::GROUND, 10.0)?;
    let r1 = netlist.add_resistor("R1", vin, mid, 1_000.0, 0.05)?;
    let r2 = netlist.add_resistor("R2", mid, Net::GROUND, 1_000.0, 0.05)?;
    let points = vec![
        TestPoint::new(mid, "Vmid", vec![r1, r2]),
        TestPoint::new(vin, "Vin", vec![]),
    ];
    let diagnoser = Diagnoser::from_netlist(&netlist, points, DiagnoserConfig::default())?;

    let handle = serve("127.0.0.1:0", diagnoser, ServeConfig::default())?;
    println!("serving on http://{} (ADDR below)\n", handle.addr());
    let mut client = Client::connect(handle.addr())?;

    // A board under test reads 6.1 V at the midpoint where ~5 V is
    // expected: the service returns ranked candidates and recommends
    // probing Vin next.
    let body = r#"{"boards": [[{"point": "Vmid", "value": {"m1": 6.05, "m2": 6.15, "alpha": 0.1, "beta": 0.1}}]]}"#;
    let response = client.diagnose(body)?;
    assert_eq!(response.status, 200);
    let id = response
        .header("x-request-id")
        .expect("every 200 carries an id")
        .to_string();
    transcript(
        "diagnose a drifted board",
        "POST",
        "/diagnose",
        Some(body),
        &response,
    );

    // Malformed input maps to the error taxonomy, not a dropped
    // connection.
    let mut fresh = Client::connect(handle.addr())?;
    let bad = fresh.diagnose("{\"boards\": [[{\"point\": \"nope\", \"value\": 1}]]}")?;
    assert_eq!(bad.status, 400);
    transcript(
        "a bad request gets the taxonomy",
        "POST",
        "/diagnose",
        Some("{\"boards\": [[{\"point\": \"nope\", ...}]]}"),
        &bad,
    );

    // The whole counter table over HTTP (all zeros without `obs`).
    let metrics = client.request("GET", "/metrics", None)?;
    assert_eq!(metrics.status, 200);
    transcript("metrics snapshot", "GET", "/metrics", None, &metrics);

    // The Chrome trace of the completed request, by its id.
    let trace = client.request("GET", &format!("/trace/{id}"), None)?;
    assert_eq!(trace.status, 200);
    transcript(
        "chrome trace of the first request",
        "GET",
        &format!("/trace/{id}"),
        None,
        &trace,
    );

    handle.shutdown();
    println!("server drained and stopped");
    Ok(())
}
