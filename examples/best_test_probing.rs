//! Guided probing (§8): let FLAMES recommend the next best test on an
//! 8-stage cascade with a hidden weak stage, comparing the fuzzy-entropy
//! policy against the GDE-style probabilistic baseline.
//!
//! ```bash
//! cargo run --example best_test_probing
//! ```

use flames::circuit::circuits::cascade;
use flames::circuit::fault::inject_faults;
use flames::circuit::predict::measure_all;
use flames::circuit::Fault;
use flames::core::strategy::{probe_until_isolated, recommend, Policy};
use flames::core::{Diagnoser, DiagnoserConfig};
use flames::obs::MetricsSnapshot;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let c = cascade(8, 1.3, 0.03);
    let hidden_fault = 5; // amp_6 runs at 60 % gain
    let board = inject_faults(
        &c.netlist,
        &[(c.amps[hidden_fault], Fault::ParamFactor(0.6))],
    )?;
    let readings = measure_all(&board, &c.stages, 0.02)?;
    let diagnoser = Diagnoser::from_netlist(
        &c.netlist,
        c.test_points.clone(),
        DiagnoserConfig::default(),
    )?;

    // Peek at the first recommendation of each policy.
    let mut session = diagnoser.session();
    for policy in [Policy::FuzzyEntropy, Policy::Probabilistic] {
        let choices = recommend(&session, policy, 0.05);
        let best = choices.first().expect("unprobed points exist");
        println!(
            "{policy}: first probe {} (score {:.3}, expected entropy {:.3})",
            best.name, best.score, best.expected_entropy
        );
    }
    println!();

    // Drive both policies to isolation, reusing one warm session:
    // `reset()` restores the model's pre-propagated base state between
    // runs, so only each policy's own probes are propagated.
    let before = MetricsSnapshot::capture();
    for policy in [
        Policy::FuzzyEntropy,
        Policy::Probabilistic,
        Policy::FixedOrder,
    ] {
        session.reset();
        let run = probe_until_isolated(&mut session, policy, 0.05, &|i| readings[i])?;
        println!(
            "{policy:<14} probes: {:<42} cost {:>4.1}  isolated: {:<5}  top: [{}]",
            run.probes.join(" -> "),
            run.cost,
            run.isolated,
            run.top_candidate.join(", ")
        );
    }
    println!();
    println!("hidden defect was amp_{} at 60 % gain", hidden_fault + 1);

    // How the incremental planner served those runs (all zeros when the
    // `obs` feature is off): every point scoring is counted, entropy
    // terms come out of the per-run memo far more often than they are
    // computed, and candidates are maintained incrementally — the
    // rebuild counter moves only on the retained oracle path.
    let delta = MetricsSnapshot::capture().delta_since(&before);
    println!();
    println!("planner counters over the three runs:");
    for name in [
        "strategy.probe_evals",
        "fuzzy.entropy_memo_hit",
        "fuzzy.entropy_memo_miss",
        "atms.candidates_incremental",
        "atms.candidates_rebuilt",
    ] {
        println!("  {name:<28} {}", delta.get(name));
    }
    Ok(())
}
