//! Quickstart: diagnose a resistive divider in a dozen lines.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use flames::circuit::predict::TestPoint;
use flames::circuit::{Net, Netlist};
use flames::core::{Diagnoser, DiagnoserConfig};
use flames::fuzzy::FuzzyInterval;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the board: a 10 V source driving two 1 kΩ ± 5 % resistors.
    let mut netlist = Netlist::new();
    let vin = netlist.add_net("vin");
    let mid = netlist.add_net("mid");
    netlist.add_voltage_source("V", vin, Net::GROUND, 10.0)?;
    let r1 = netlist.add_resistor("R1", vin, mid, 1_000.0, 0.05)?;
    let r2 = netlist.add_resistor("R2", mid, Net::GROUND, 1_000.0, 0.05)?;

    // 2. Declare what can be probed and what each probe depends on.
    let points = vec![TestPoint::new(mid, "Vmid", vec![r1, r2])];
    let diagnoser = Diagnoser::from_netlist(&netlist, points, DiagnoserConfig::default())?;

    // 3. A board under test reads 6.2 V where ~5 V is expected.
    let mut session = diagnoser.session();
    session.measure("Vmid", FuzzyInterval::crisp(6.2).widened(0.05)?)?;
    session.propagate();

    // 4. Read the diagnosis.
    let report = session.report();
    print!("{report}");
    let dc = session.consistency("Vmid").expect("probed point");
    println!("degree of consistency at Vmid: {dc}");
    assert!(
        !report.candidates.is_empty(),
        "a 24% deviation must be flagged"
    );
    Ok(())
}
