//! The paper's main experimental vehicle: diagnosing the Fig. 6
//! three-stage amplifier with an injected defect (pass the defect name as
//! an argument).
//!
//! ```bash
//! cargo run --example three_stage_amplifier -- short-r2
//! cargo run --example three_stage_amplifier -- r2-high
//! cargo run --example three_stage_amplifier -- beta2-low
//! cargo run --example three_stage_amplifier -- open-r3
//! cargo run --example three_stage_amplifier -- open-n1
//! cargo run --example three_stage_amplifier -- healthy
//! cargo run --example three_stage_amplifier -- r2-high trace.json  # + Chrome trace
//! ```

use flames::circuit::circuits::three_stage;
use flames::circuit::fault::{inject_faults, open_connection};
use flames::circuit::predict::measure_all;
use flames::circuit::Fault;
use flames::core::fault_model::{infer_fault_mode, standard_modes};
use flames::core::propagation::PropagatorConfig;
use flames::core::{Diagnoser, DiagnoserConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let defect = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "r2-high".to_owned());

    let ts = three_stage(0.02);
    let board = match defect.as_str() {
        "healthy" => ts.netlist.clone(),
        "short-r2" => inject_faults(&ts.netlist, &[(ts.r2, Fault::Short)])?,
        "r2-high" => inject_faults(&ts.netlist, &[(ts.r2, Fault::Param(14_000.0))])?,
        "beta2-low" => inject_faults(&ts.netlist, &[(ts.t2, Fault::Param(40.0))])?,
        "open-r3" => inject_faults(&ts.netlist, &[(ts.r3, Fault::Open)])?,
        "open-n1" => open_connection(&ts.netlist, ts.r3, ts.n1)?,
        other => {
            eprintln!("unknown defect {other:?}; see the example header for options");
            std::process::exit(2);
        }
    };

    println!("defect: {defect}");
    let diagnoser = Diagnoser::from_netlist(
        &ts.netlist,
        ts.test_points.clone(),
        DiagnoserConfig::default(),
    )?;

    // Probe the output first, then the internal stage outputs — the
    // paper's measurement order.
    let readings = measure_all(&board, &[ts.vs, ts.v1, ts.v2], 0.05)?;
    let before = flames::obs::MetricsSnapshot::capture();
    let mut session = diagnoser.session();
    session.measure("Vs", readings[0])?;
    session.measure("V1", readings[1])?;
    session.measure("V2", readings[2])?;
    session.propagate();

    let report = session.report();
    print!("{report}");

    // What the diagnosis cost the kernel (absent with obs compiled out).
    if flames::obs::enabled() {
        let counters = flames::obs::MetricsSnapshot::capture().delta_since(&before);
        println!("kernel counters for this diagnosis:");
        for (name, value) in counters.with_prefixes(&["atms.", "core."]) {
            println!("  {name:<38} {value}");
        }
        println!();
    }

    // Optional second argument: write the diagnosis trace as Chrome
    // trace_event JSON, loadable in about:tracing or Perfetto.
    if let Some(path) = std::env::args().nth(2) {
        std::fs::write(&path, session.trace().to_chrome_json())?;
        println!("wrote diagnosis trace to {path}\n");
    }

    // Fault-mode refinement for the top suspects (§7 of the paper).
    let measurements: Vec<(String, flames::fuzzy::FuzzyInterval)> = report
        .points
        .iter()
        .filter_map(|p| p.measured.map(|m| (p.name.clone(), m)))
        .collect();
    let modes = standard_modes(0.02);
    for cand in report.refined.iter().take(3) {
        let Some(name) = cand.members.first() else {
            continue;
        };
        let Some(comp) = diagnoser.netlist().component_by_name(name) else {
            continue;
        };
        let md = infer_fault_mode(
            &diagnoser,
            &measurements,
            comp,
            &modes,
            PropagatorConfig::default(),
        )?;
        if let (Some(ratio), Some((mode, degree))) = (md.ratio, md.best()) {
            println!(
                "fault model: {name} parameter ratio ≈ {:.2} -> '{mode}' @ {degree:.2}",
                ratio.core_midpoint()
            );
        }
    }
    Ok(())
}
