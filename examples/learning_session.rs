//! Learning from experience (§7): after each confirmed diagnosis a
//! symptom→failure rule enters the knowledge base; on later boards with
//! the same symptoms FLAMES suggests the culprit before any search.
//!
//! ```bash
//! cargo run --example learning_session
//! ```

use flames::circuit::circuits::three_stage;
use flames::circuit::fault::inject_faults;
use flames::circuit::predict::measure_all;
use flames::circuit::Fault;
use flames::core::learning::{symptoms_of, KnowledgeBase};
use flames::core::{Diagnoser, DiagnoserConfig, Report, Session};

/// Diagnoses one board on a warm, reused session: `reset()` rewinds to
/// the model's pre-propagated base state, so consecutive boards pay no
/// rebuild.
fn diagnose_board(
    session: &mut Session<'_>,
    board: &flames::circuit::Netlist,
    nets: &[flames::circuit::Net],
) -> Result<Report, Box<dyn std::error::Error>> {
    session.reset();
    let readings = measure_all(board, nets, 0.05)?;
    session.measure("Vs", readings[0])?;
    session.measure("V1", readings[1])?;
    session.measure("V2", readings[2])?;
    session.propagate();
    Ok(session.report())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ts = three_stage(0.02);
    let diagnoser = Diagnoser::from_netlist(
        &ts.netlist,
        ts.test_points.clone(),
        DiagnoserConfig::default(),
    )?;
    let nets = [ts.vs, ts.v1, ts.v2];
    let mut kb = KnowledgeBase::new();
    let mut session = diagnoser.session();

    // --- Monday: a board with an open R3 comes in. The technician works
    //     it through and confirms the culprit; FLAMES learns the rule.
    let board = inject_faults(&ts.netlist, &[(ts.r3, Fault::Open)])?;
    let report = diagnose_board(&mut session, &board, &nets)?;
    let symptoms = symptoms_of(&report);
    println!("board #1 symptoms:");
    for s in &symptoms {
        println!("  {s}");
    }
    kb.learn(symptoms, "R3", Some("open".to_owned()));
    println!("learned: {}", kb.iter().next().expect("one rule"));
    println!();

    // --- Tuesday, Wednesday: two more boards with the same defect.
    for _ in 0..2 {
        let report = diagnose_board(&mut session, &board, &nets)?;
        kb.learn(symptoms_of(&report), "R3", None);
    }
    println!(
        "after three confirmations: {}",
        kb.iter().next().expect("one rule")
    );
    println!();

    // --- Thursday: a new board shows the same symptom pattern. Before
    //     any model-based search, the knowledge base already points at R3.
    let report = diagnose_board(&mut session, &board, &nets)?;
    let suggestions = kb.suggest(&symptoms_of(&report));
    println!("suggestions for the new board:");
    for s in &suggestions {
        println!(
            "  {}{} @ {:.2}",
            s.culprit,
            s.mode
                .as_deref()
                .map(|m| format!(" ({m})"))
                .unwrap_or_default(),
            s.score
        );
    }
    assert_eq!(suggestions.first().map(|s| s.culprit.as_str()), Some("R3"));

    // A different defect does not match the learned rule blindly.
    let other = inject_faults(&ts.netlist, &[(ts.r2, Fault::Short)])?;
    let report = diagnose_board(&mut session, &other, &nets)?;
    let other_suggestions = kb.suggest(&symptoms_of(&report));
    println!();
    println!(
        "a short-R2 board gets {} suggestion(s) from the R3 rule (partial match only)",
        other_suggestions.len()
    );
    Ok(())
}
