//! The assembled FLAMES expert system (the paper's Fig. 3): guided
//! probing, model revalidation, fault-mode refinement, expert priors and
//! the learning loop — all through the one-call [`Flames::diagnose`] API.
//!
//! ```bash
//! cargo run --example full_flames
//! ```

use flames::circuit::circuits::three_stage;
use flames::circuit::fault::inject_faults;
use flames::circuit::predict::measure_all;
use flames::circuit::Fault;
use flames::core::{Flames, FlamesConfig};
use flames::fuzzy::FuzzyInterval;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ts = three_stage(0.02);

    // The expert seeds the system: R2 has a bad-batch history.
    let config = FlamesConfig {
        priors: vec![("R2".to_owned(), FuzzyInterval::new(0.5, 0.6, 0.1, 0.1)?)],
        ..Default::default()
    };
    let mut flames = Flames::new(&ts.netlist, ts.test_points.clone(), config)?;

    // A batch of boards arrives, some sharing the same defect.
    let defects: Vec<(&str, flames::circuit::Netlist)> = vec![
        (
            "board 1: short R2",
            inject_faults(&ts.netlist, &[(ts.r2, Fault::Short)])?,
        ),
        ("board 2: healthy", ts.netlist.clone()),
        (
            "board 3: short R2 again",
            inject_faults(&ts.netlist, &[(ts.r2, Fault::Short)])?,
        ),
    ];

    for (label, board) in defects {
        println!("=== {label} ===");
        let readings = measure_all(&board, &[ts.v1, ts.v2, ts.vs], 0.05)?;
        let outcome = flames.diagnose(&|i| readings[i])?;
        print!("{outcome}");
        if let Some(suspect) = outcome.prime_suspect() {
            let suspect = suspect.to_owned();
            println!("prime suspect: {suspect}");
            // The technician pulls the part, confirms, and FLAMES learns.
            if suspect == "R2" {
                flames.confirm(&outcome, "R2");
                println!(
                    "confirmed R2 -> learned ({} rule(s) in the knowledge base)",
                    flames.knowledge.len()
                );
            }
        } else {
            println!("board passes");
        }
        println!();
    }

    println!("knowledge base after the batch:");
    for rule in flames.knowledge.iter() {
        println!("  {rule}");
    }
    Ok(())
}
